package core

import (
	"reflect"
	"testing"

	"dyngraph/internal/datagen"
	"dyngraph/internal/graph"
)

func TestOnlineFirstPushReturnsNil(t *testing.T) {
	seq := datagen.Toy()
	o := NewOnline(Config{}, 2)
	rep, err := o.Push(seq.At(0))
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Fatal("first Push should return nil report")
	}
	if o.Delta() != 0 {
		t.Fatalf("δ before any transition = %g, want 0", o.Delta())
	}
}

func TestOnlineMatchesBatchAfterFullStream(t *testing.T) {
	// Stream a multi-transition sequence through the online detector;
	// the final re-thresholded Report must equal the batch pipeline's.
	seq := multiTransitionSequence(t)
	l := 3.0

	o := NewOnline(Config{}, l)
	for tt := 0; tt < seq.T(); tt++ {
		if _, err := o.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
	}

	batchTrs, err := New(Config{}).Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	batch := Threshold(batchTrs, SelectDelta(batchTrs, l))
	online := o.Report()

	if len(batch.Transitions) != len(online.Transitions) {
		t.Fatalf("transition counts differ: %d vs %d", len(batch.Transitions), len(online.Transitions))
	}
	for i := range batch.Transitions {
		if !reflect.DeepEqual(batch.Transitions[i].Nodes, online.Transitions[i].Nodes) {
			t.Fatalf("transition %d nodes differ: %v vs %v",
				i, batch.Transitions[i].Nodes, online.Transitions[i].Nodes)
		}
	}
}

func TestOnlineRejectsVertexCountShrink(t *testing.T) {
	o := NewOnline(Config{}, 1)
	g3 := graph.NewBuilder(3).MustBuild()
	g4 := graph.NewBuilder(4).MustBuild()
	if _, err := o.Push(g4); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Push(g3); err == nil {
		t.Fatal("want error on vertex-count shrink")
	}
}

func TestOnlineAcceptsVertexGrowth(t *testing.T) {
	o := NewOnline(Config{}, 1)
	b3 := graph.NewBuilder(3)
	b3.AddEdge(0, 1, 1)
	b3.AddEdge(1, 2, 1)
	if _, err := o.Push(b3.MustBuild()); err != nil {
		t.Fatal(err)
	}
	// Grown snapshot: vertex 3 joins, an existing edge reweights, and a
	// new-vertex edge appears (the latter outside the common set).
	b4 := graph.NewBuilder(4)
	b4.AddEdge(0, 1, 1)
	b4.AddEdge(1, 2, 5)
	b4.AddEdge(2, 3, 2)
	rep, err := o.Push(b4.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no transition report")
	}
	// The first grown transition scores only the common vertex set:
	// (1,2) changed within it, (2,3) touches the new vertex.
	tr := o.Transitions()[0]
	for _, s := range tr.Scores {
		if s.J >= 3 {
			t.Fatalf("score on new vertex leaked into common-set transition: %+v", s)
		}
	}
	// Next transition scores the full 4-vertex set.
	b4b := graph.NewBuilder(4)
	b4b.AddEdge(0, 1, 1)
	b4b.AddEdge(1, 2, 5)
	if _, err := o.Push(b4b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range o.Transitions()[1].Scores {
		if s.I == 2 && s.J == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("dropped new-vertex edge (2,3) not scored on the following transition")
	}
}

func TestOnlineVertexIDs(t *testing.T) {
	o := NewOnline(Config{}, 1)
	g := graph.NewBuilder(2).MustBuild()
	if _, err := o.Push(g); err != nil {
		t.Fatal(err)
	}
	if err := o.SetVertexIDs([]string{"a"}); err == nil {
		t.Fatal("want error on length mismatch")
	}
	if err := o.SetVertexIDs([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	rep := o.Report()
	if len(rep.VertexIDs) != 2 || rep.VertexIDs[1] != "b" {
		t.Fatalf("Report VertexIDs = %v", rep.VertexIDs)
	}
	if err := o.SetVertexIDs(nil); err != nil {
		t.Fatal(err)
	}
	if o.Report().VertexIDs != nil {
		t.Fatal("VertexIDs not cleared")
	}
}

func TestOnlineRejectsNil(t *testing.T) {
	o := NewOnline(Config{}, 1)
	if _, err := o.Push(nil); err == nil {
		t.Fatal("want error on nil instance")
	}
}

func TestOnlineNewestReportUsesCurrentDelta(t *testing.T) {
	seq := multiTransitionSequence(t)
	o := NewOnline(Config{}, 3)
	var last *TransitionReport
	for tt := 0; tt < seq.T(); tt++ {
		rep, err := o.Push(seq.At(tt))
		if err != nil {
			t.Fatal(err)
		}
		if tt > 0 {
			if rep == nil {
				t.Fatalf("Push %d returned nil report", tt)
			}
			if rep.T != tt-1 {
				t.Fatalf("report transition = %d, want %d", rep.T, tt-1)
			}
			last = rep
		}
	}
	// The newest per-push report must agree with the full re-threshold.
	full := o.Report().Transitions[seq.T()-2]
	if !reflect.DeepEqual(last.Nodes, full.Nodes) {
		t.Fatalf("newest report %v disagrees with full report %v", last.Nodes, full.Nodes)
	}
}

// multiTransitionSequence builds a 4-instance sequence: calm, calm,
// one planted bridge, bridge removed.
func multiTransitionSequence(t *testing.T) *graph.Sequence {
	t.Helper()
	mk := func(bridge bool, jitter float64) *graph.Graph {
		b := graph.NewBuilder(10)
		for c := 0; c < 2; c++ {
			base := c * 5
			for i := 0; i < 5; i++ {
				for j := i + 1; j < 5; j++ {
					b.SetEdge(base+i, base+j, 2+jitter)
				}
			}
		}
		b.SetEdge(0, 5, 0.2)
		if bridge {
			b.SetEdge(2, 7, 3)
		}
		return b.MustBuild()
	}
	return graph.MustSequence([]*graph.Graph{
		mk(false, 0), mk(false, 0.05), mk(true, 0.05), mk(false, 0.1),
	})
}

func TestOnlineMaxHistoryBoundsRetention(t *testing.T) {
	seq := multiTransitionSequence(t)
	const window = 2
	o := NewOnline(Config{}, 3)
	o.SetMaxHistory(window)
	for tt := 0; tt < seq.T(); tt++ {
		if _, err := o.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
		if got := len(o.Transitions()); got > window {
			t.Fatalf("after push %d: %d retained transitions, window is %d", tt, got, window)
		}
	}
	// 3 transitions total, window 2 ⇒ exactly one evicted, and the
	// retained ones are the newest with their original indices.
	if o.Evicted() != 1 {
		t.Fatalf("Evicted() = %d, want 1", o.Evicted())
	}
	trs := o.Transitions()
	if len(trs) != window || trs[0].T != 1 || trs[1].T != 2 {
		t.Fatalf("retained transitions %v, want T=1,2", []int{trs[0].T, trs[1].T})
	}
	if got := len(o.Report().Transitions); got != window {
		t.Fatalf("Report covers %d transitions, want %d", got, window)
	}
}

func TestOnlineMaxHistoryDeltaMatchesWindowedSelection(t *testing.T) {
	// The windowed detector's δ must equal SelectDelta over exactly the
	// retained transitions — i.e. the budget l·|window| refers to the
	// window, not the full stream.
	seq := multiTransitionSequence(t)
	l := 3.0
	full := NewOnline(Config{}, l)
	windowed := NewOnline(Config{}, l)
	windowed.SetMaxHistory(2)
	for tt := 0; tt < seq.T(); tt++ {
		if _, err := full.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
		if _, err := windowed.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
	}
	want := SelectDelta(windowed.Transitions(), l)
	if windowed.Delta() != want {
		t.Fatalf("windowed δ = %g, want SelectDelta over window = %g", windowed.Delta(), want)
	}
	// Per-transition scores are history-independent: the retained
	// window must carry the same scores the unbounded detector holds
	// for those transitions.
	fullTrs := full.Transitions()
	for _, tr := range windowed.Transitions() {
		if !reflect.DeepEqual(tr.Scores, fullTrs[tr.T].Scores) {
			t.Fatalf("transition %d scores differ between windowed and full detectors", tr.T)
		}
	}
}

func TestOnlineMaxHistoryZeroKeepsEverything(t *testing.T) {
	seq := multiTransitionSequence(t)
	o := NewOnline(Config{}, 3)
	o.SetMaxHistory(0)
	for tt := 0; tt < seq.T(); tt++ {
		if _, err := o.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
	}
	if len(o.Transitions()) != seq.T()-1 || o.Evicted() != 0 {
		t.Fatalf("unbounded detector retained %d transitions (evicted %d), want %d (0)",
			len(o.Transitions()), o.Evicted(), seq.T()-1)
	}
}
