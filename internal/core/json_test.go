package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenReport is a fixed report exercising the wire encoding's edge
// cases: a transition with edges and nodes, a calm transition with
// neither (both must encode as null, not []), and a non-integral δ.
func goldenReport() Report {
	return Report{
		Delta: 12.5,
		Transitions: []TransitionReport{
			{
				T: 0,
				Edges: []EdgeScore{
					{I: 2, J: 7, Score: 31.25},
					{I: 0, J: 7, Score: 14.062500000000002},
				},
				Nodes: []int{0, 2, 7},
			},
			{T: 1}, // calm: no anomalous edges or nodes
			{
				T:     2,
				Edges: []EdgeScore{{I: 1, J: 3, Score: 13}},
				Nodes: []int{1, 3},
			},
		},
	}
}

// TestReportJSONGolden freezes the wire shape shared by cadrun -json
// and the cadd /report endpoint. If this test fails because of an
// intentional format change, regenerate with
//
//	go test ./internal/core -run TestReportJSONGolden -update
//
// and audit the diff: every consumer of either surface sees it.
func TestReportJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, goldenReport()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("encoding drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestReportJSONEmpty pins the degenerate encoding: a zero report's
// transitions marshal as null (matching the pre-extraction cadrun
// behaviour), not as an empty array.
func TestReportJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, Report{}); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"delta\": 0,\n  \"transitions\": null\n}\n"
	if buf.String() != want {
		t.Errorf("empty report = %q, want %q", buf.String(), want)
	}
}
