package core

import (
	"math/rand"
	"testing"

	"dyngraph/internal/commute"
	"dyngraph/internal/graph"
)

// Ablation: COM scored on all n² pairs versus the changed-adjacency
// support (the internal/core design decision) — plus the raw scoring
// and thresholding throughput that sits on CAD's critical path after
// the commute-time work.

func benchPair(n int) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(23))
	mk := func(perturb bool) *graph.Graph {
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			b.AddEdge(perm[i-1], perm[i], 1)
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				b.SetEdge(i, j, 0.5+rng.Float64())
			}
		}
		if perturb {
			for k := 0; k < n/10; k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j {
					b.SetEdge(i, j, 2)
				}
			}
		}
		return b.MustBuild()
	}
	return mk(false), mk(true)
}

func BenchmarkCOMSupportAblation(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	b.Run("allpairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = TransitionScores(g0, g1, o0, o1, VariantCOM, true)
		}
	})
	b.Run("diffsupport", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = TransitionScores(g0, g1, o0, o1, VariantCOM, false)
		}
	})
}

func BenchmarkTransitionScoresCAD(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	}
}

func BenchmarkThresholdAndSelectDelta(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	scores := TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	trs := []Transition{{T: 0, Scores: scores, Total: TotalScore(scores)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := SelectDelta(trs, 10)
		_ = Threshold(trs, delta)
	}
}

func BenchmarkNodeScores(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	scores := TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NodeScores(n, scores)
	}
}
