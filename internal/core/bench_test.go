package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dyngraph/internal/commute"
	"dyngraph/internal/graph"
	"dyngraph/internal/solver"
)

// Ablation: COM scored on all n² pairs versus the changed-adjacency
// support (the internal/core design decision) — plus the raw scoring
// and thresholding throughput that sits on CAD's critical path after
// the commute-time work.

func benchPair(n int) (*graph.Graph, *graph.Graph) {
	rng := rand.New(rand.NewSource(23))
	mk := func(perturb bool) *graph.Graph {
		b := graph.NewBuilder(n)
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			b.AddEdge(perm[i-1], perm[i], 1)
		}
		for k := 0; k < 2*n; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				b.SetEdge(i, j, 0.5+rng.Float64())
			}
		}
		if perturb {
			for k := 0; k < n/10; k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j {
					b.SetEdge(i, j, 2)
				}
			}
		}
		return b.MustBuild()
	}
	return mk(false), mk(true)
}

func BenchmarkCOMSupportAblation(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	b.Run("allpairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = TransitionScores(g0, g1, o0, o1, VariantCOM, true)
		}
	})
	b.Run("diffsupport", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = TransitionScores(g0, g1, o0, o1, VariantCOM, false)
		}
	})
}

func BenchmarkTransitionScoresCAD(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	}
}

func BenchmarkThresholdAndSelectDelta(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	scores := TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	trs := []Transition{{T: 0, Scores: scores, Total: TotalScore(scores)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := SelectDelta(trs, 10)
		_ = Threshold(trs, delta)
	}
}

func BenchmarkNodeScores(b *testing.B) {
	const n = 300
	g0, g1 := benchPair(n)
	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	scores := TransitionScores(g0, g1, o0, o1, VariantCAD, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NodeScores(n, scores)
	}
}

// benchSnapshots builds a sparse base graph (spanning path + ~2n random
// edges) and variants of it with a handful of edge edits each — the
// sparse-stream shape the incremental pipeline targets.
func benchSnapshots(n, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(71))
	base := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		base.AddEdge(perm[i-1], perm[i], 1)
	}
	for k := 0; k < 2*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			base.SetEdge(i, j, 0.5+rng.Float64())
		}
	}
	g0 := base.MustBuild()
	out := make([]*graph.Graph, count)
	out[0] = g0
	edges := g0.Edges()
	for v := 1; v < count; v++ {
		b := graph.NewBuilder(n)
		for _, e := range edges {
			b.SetEdge(e.I, e.J, e.W)
		}
		// A handful of ±10% reweights of existing edges — the "same
		// actors, drifting intensities" regime of an email or traffic
		// stream, where consecutive instances are strongly correlated.
		for k := 0; k < 4; k++ {
			e := edges[rng.Intn(len(edges))]
			b.SetEdge(e.I, e.J, e.W*(0.9+0.2*rng.Float64()))
		}
		out[v] = b.MustBuild()
	}
	return out
}

// BenchmarkOnlinePushColdVsWarm measures the streaming hot path: one
// OnlineDetector Push per iteration over a cycle of lightly-edited
// snapshots, with the embedding oracle forced (ExactCutoff: 1). "cold"
// is the default configuration (independent projections, every build
// from scratch); "warm" enables SharedProjections so each build
// warm-starts from the previous embedding. The custom pcg-iters/push
// metric is the paper-level cost driver the wall clock follows.
//
// Solves run at Tol=1e-5: a k≈12 random projection carries O(1/√k) ≈
// 30% distance error, so the paper-exactness default of 1e-8 buys
// nothing for detection — 1e-5 is the tolerance a serving deployment
// would pick. (The warm/cold *ratio* depends on it: a warm start skips
// the residual decades between the inter-snapshot change magnitude and
// 1, so the looser the target, the larger the relative saving.)
//
// The first push of each run is performed before the timer starts:
// it is always a cold build (nothing to warm-start from), and the
// benchmark measures the steady-state per-push cost of each mode.
func BenchmarkOnlinePushColdVsWarm(b *testing.B) {
	for _, n := range []int{1000, 5000, 20000} {
		snaps := benchSnapshots(n, 9)
		for _, mode := range []string{"cold", "warm"} {
			cfg := Config{
				Commute: commute.Config{
					K:                 12,
					Seed:              7,
					Solver:            solver.Options{Tol: 1e-5},
					SharedProjections: mode == "warm",
				},
				ExactCutoff: 1,
			}
			b.Run(fmt.Sprintf("%s/n=%d", mode, n), func(b *testing.B) {
				o := NewOnline(cfg, 5)
				o.SetMaxHistory(32)
				if _, err := o.Push(snaps[0]); err != nil {
					b.Fatal(err)
				}
				var iters, pushes int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := o.Push(snaps[(i+1)%len(snaps)]); err != nil {
						b.Fatal(err)
					}
					iters += o.LastOracleStats().PCGIterations
					pushes++
				}
				b.ReportMetric(float64(iters)/float64(pushes), "pcg-iters/push")
			})
		}
	}
}
