package core

import (
	"reflect"
	"strings"
	"testing"

	"dyngraph/internal/graph"
)

// restorePoint pushes the first `split` instances of seq into a fresh
// detector and returns it.
func restorePoint(t *testing.T, seq *graph.Sequence, l float64, split, maxHistory int) *OnlineDetector {
	t.Helper()
	o := NewOnline(Config{}, l)
	o.SetMaxHistory(maxHistory)
	for tt := 0; tt < split; tt++ {
		if _, err := o.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestRestoreOnlineRoundTrip(t *testing.T) {
	// Capture State() mid-stream, restore into a fresh detector, and
	// stream the remainder through both. The original and the restored
	// detector must agree exactly — same δ, same eviction count, same
	// report — at every subsequent push.
	seq := multiTransitionSequence(t)
	l := 3.0
	for split := 1; split < seq.T(); split++ {
		orig := restorePoint(t, seq, l, split, 0)
		restored, err := RestoreOnline(Config{}, l, orig.State())
		if err != nil {
			t.Fatalf("split %d: RestoreOnline: %v", split, err)
		}
		for tt := split; tt < seq.T(); tt++ {
			repO, err := orig.Push(seq.At(tt))
			if err != nil {
				t.Fatal(err)
			}
			repR, err := restored.Push(seq.At(tt))
			if err != nil {
				t.Fatalf("split %d: restored push %d: %v", split, tt, err)
			}
			if !reflect.DeepEqual(repO, repR) {
				t.Fatalf("split %d push %d: per-push reports diverge:\n%+v\n%+v", split, tt, repO, repR)
			}
		}
		if orig.Delta() != restored.Delta() || orig.Evicted() != restored.Evicted() {
			t.Fatalf("split %d: δ/evicted diverge: (%g,%d) vs (%g,%d)",
				split, orig.Delta(), orig.Evicted(), restored.Delta(), restored.Evicted())
		}
		if !reflect.DeepEqual(orig.Report(), restored.Report()) {
			t.Fatalf("split %d: full reports diverge", split)
		}
	}
}

func TestRestoreOnlineRoundTripWithEviction(t *testing.T) {
	// Same round trip, but through a bounded history window, restoring
	// at a point where transitions have already been evicted.
	seq := multiTransitionSequence(t)
	l, window := 3.0, 2
	orig := restorePoint(t, seq, l, seq.T(), window)
	if orig.Evicted() == 0 {
		t.Fatal("test premise broken: no evictions before the restore point")
	}
	restored, err := RestoreOnline(Config{}, l, orig.State())
	if err != nil {
		t.Fatal(err)
	}
	restored.SetMaxHistory(window)
	// One more instance past the restore point, evicting again.
	next := seq.At(1)
	if _, err := orig.Push(next); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Push(next); err != nil {
		t.Fatal(err)
	}
	if orig.Evicted() != restored.Evicted() {
		t.Fatalf("eviction counts diverge: %d vs %d", orig.Evicted(), restored.Evicted())
	}
	if !reflect.DeepEqual(orig.Report(), restored.Report()) {
		t.Fatal("reports diverge after post-restore eviction")
	}
}

func TestRestoreOnlineEmptyState(t *testing.T) {
	o, err := RestoreOnline(Config{}, 2, OnlineState{})
	if err != nil {
		t.Fatal(err)
	}
	seq := multiTransitionSequence(t)
	if _, err := o.Push(seq.At(0)); err != nil {
		t.Fatalf("restored empty detector rejects first push: %v", err)
	}
}

func TestRestoreOnlineRejectsInconsistentState(t *testing.T) {
	seq := multiTransitionSequence(t)
	base := restorePoint(t, seq, 3, 3, 0).State()

	cases := []struct {
		name   string
		mutate func(st *OnlineState)
		want   string
	}{
		{"negative instances", func(st *OnlineState) { st.T = -1 }, "negative"},
		{"missing prev graph", func(st *OnlineState) { st.Prev = nil }, "no previous graph"},
		{"vertex count mismatch", func(st *OnlineState) { st.N = 7 }, "vertices"},
		{"too much history", func(st *OnlineState) {
			st.History = append(append([]Transition(nil), st.History...), st.History...)
		}, "exceed"},
		{"eviction miscount", func(st *OnlineState) { st.Evicted = 1 }, "eviction count"},
		{"non-contiguous window", func(st *OnlineState) {
			st.History = append([]Transition(nil), st.History...)
			st.History[1].T = 5
		}, "window position"},
		{"tampered delta", func(st *OnlineState) { st.Delta *= 2 }, "does not match"},
		{"nonempty zero-instance state", func(st *OnlineState) { st.T = 0; st.Prev = nil }, "zero instances"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base
			st.History = append([]Transition(nil), base.History...)
			tc.mutate(&st)
			_, err := RestoreOnline(Config{}, 3, st)
			if err == nil {
				t.Fatal("inconsistent state accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestOnlineEvictionMatchesBatchOnRetainedWindow(t *testing.T) {
	// The eviction audit: a windowed streaming detector must be
	// indistinguishable from a batch run over just the retained suffix
	// of the sequence — same scores, and a δ selected over exactly that
	// window. Exercises the front-drop compaction and the δ-breakpoint
	// cache invalidation it triggers.
	seq := multiTransitionSequence(t)
	l, window := 3.0, 2
	o := NewOnline(Config{}, l)
	o.SetMaxHistory(window)
	for tt := 0; tt < seq.T(); tt++ {
		if _, err := o.Push(seq.At(tt)); err != nil {
			t.Fatal(err)
		}
		if tt == 0 {
			continue
		}
		// The δ cache must track eviction: after every push the cached
		// threshold equals a from-scratch selection over the window.
		if want := SelectDelta(o.Transitions(), l); o.Delta() != want {
			t.Fatalf("after push %d: cached δ %g, recomputed %g", tt, o.Delta(), want)
		}
	}

	trs := o.Transitions()
	first := trs[0].T // window start as a transition index
	if o.Evicted() != first {
		t.Fatalf("Evicted() = %d, window starts at transition %d", o.Evicted(), first)
	}
	// Batch over the graph suffix that generates the retained window:
	// transition first maps the move from instance first to first+1.
	var graphs []*graph.Graph
	for tt := first; tt < seq.T(); tt++ {
		graphs = append(graphs, seq.At(tt))
	}
	batchTrs, err := New(Config{}).Run(graph.MustSequence(graphs))
	if err != nil {
		t.Fatal(err)
	}
	if len(batchTrs) != len(trs) {
		t.Fatalf("batch over suffix has %d transitions, window has %d", len(batchTrs), len(trs))
	}
	for i := range trs {
		if !reflect.DeepEqual(trs[i].Scores, batchTrs[i].Scores) || trs[i].Total != batchTrs[i].Total {
			t.Fatalf("window transition %d scores differ from batch over the retained suffix", trs[i].T)
		}
	}
	if want := SelectDelta(batchTrs, l); o.Delta() != want {
		t.Fatalf("windowed δ %g, batch-over-suffix δ %g", o.Delta(), want)
	}
}
