package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dyngraph/internal/commute"
	"dyngraph/internal/datagen"
	"dyngraph/internal/graph"
)

// toyTransition runs a variant on the toy example with exact oracles
// and returns the transition.
func toyTransition(t *testing.T, v Variant) Transition {
	t.Helper()
	seq := datagen.Toy()
	det := New(Config{Variant: v})
	trs, err := det.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 {
		t.Fatalf("transitions = %d, want 1", len(trs))
	}
	return trs[0]
}

func scoreOf(scores []EdgeScore, i, j int) float64 {
	k := graph.MakeKey(i, j)
	for _, s := range scores {
		if s.I == k.I && s.J == k.J {
			return s.Score
		}
	}
	return 0
}

// Table 1's shape: the three planted anomalies (b1,r1), (b4,b5),
// (r7,r8) must dominate the two benign changes (b1,b3), (b2,b7), and
// every untouched pair must score exactly zero.
func TestToyTable1Shape(t *testing.T) {
	tr := toyTransition(t, VariantCAD)

	var anomalyMin = math.Inf(1)
	var benignMax float64
	for _, c := range datagen.ToyChanges() {
		s := scoreOf(tr.Scores, c.I, c.J)
		if s <= 0 {
			t.Fatalf("changed edge %s has zero score", c.Name)
		}
		if c.Anomalous && s < anomalyMin {
			anomalyMin = s
		}
		if !c.Anomalous && s > benignMax {
			benignMax = s
		}
	}
	if anomalyMin < 5*benignMax {
		t.Fatalf("anomalous scores (min %g) should dominate benign (max %g)", anomalyMin, benignMax)
	}
	// Only the five changed pairs may carry non-zero CAD scores.
	if len(tr.Scores) != 5 {
		t.Fatalf("non-zero scores = %d, want exactly the 5 changed edges", len(tr.Scores))
	}
}

// Table 2's shape: node scores ΔN are high exactly on the six
// ground-truth nodes.
func TestToyTable2NodeScores(t *testing.T) {
	tr := toyTransition(t, VariantCAD)
	ns := tr.Nodes(datagen.ToyN)

	truth := make(map[int]bool)
	for _, v := range datagen.ToyAnomalousNodes() {
		truth[v] = true
	}
	var minTrue = math.Inf(1)
	var maxFalse float64
	for i, s := range ns {
		if truth[i] {
			if s < minTrue {
				minTrue = s
			}
		} else if s > maxFalse {
			maxFalse = s
		}
	}
	if minTrue < 5*maxFalse {
		t.Fatalf("true-node scores (min %g) should dominate others (max %g)", minTrue, maxFalse)
	}
}

// §3.4: ADJ cannot separate the benign (b2,b7) change from the new
// cross-cluster edge (b1,r1) when the weight deltas are comparable,
// while CAD can.
func TestADJConfusesBenignEdge(t *testing.T) {
	adj := toyTransition(t, VariantADJ)
	cad := toyTransition(t, VariantCAD)

	adjBenign := scoreOf(adj.Scores, datagen.B2, datagen.B7)
	adjAnom := scoreOf(adj.Scores, datagen.B1, datagen.R1)
	// |ΔA| is 0.5 for S5 and 1.5 for S1: same order of magnitude.
	if adjAnom/adjBenign > 10 {
		t.Fatalf("ADJ separation unexpectedly large: %g vs %g", adjAnom, adjBenign)
	}
	cadBenign := scoreOf(cad.Scores, datagen.B2, datagen.B7)
	cadAnom := scoreOf(cad.Scores, datagen.B1, datagen.R1)
	if cadAnom/cadBenign < 20 {
		t.Fatalf("CAD separation too small: %g vs %g", cadAnom, cadBenign)
	}
}

// §3.4: COM (all pairs) assigns large scores to untouched red pairs
// straddling the weakened bridge — the false-alarm mode CAD avoids.
func TestCOMFalseAlarmsOnAffectedPairs(t *testing.T) {
	com := toyTransition(t, VariantCOM)
	cad := toyTransition(t, VariantCAD)

	// (r4, r9) is untouched by any change but straddles nothing — both
	// in RB. (r1, r4) straddles the bridge: r1 ∈ RA, r4 ∈ RB.
	comAffected := scoreOf(com.Scores, datagen.R1, datagen.R4)
	if comAffected == 0 {
		t.Fatal("COM should score the affected pair (r1,r4)")
	}
	comChanged := scoreOf(com.Scores, datagen.R7, datagen.R8)
	if comAffected < comChanged/10 {
		t.Fatalf("COM affected-pair score %g should rival changed-edge score %g", comAffected, comChanged)
	}
	if s := scoreOf(cad.Scores, datagen.R1, datagen.R4); s != 0 {
		t.Fatalf("CAD scored the untouched pair (r1,r4): %g", s)
	}
}

func TestAnomalousEdgesThresholding(t *testing.T) {
	scores := []EdgeScore{
		{I: 0, J: 1, Score: 10},
		{I: 2, J: 3, Score: 5},
		{I: 4, J: 5, Score: 1},
	}
	// Total mass 16. δ=17 → nothing anomalous.
	if got := AnomalousEdges(scores, 17); got != nil {
		t.Fatalf("δ above mass: got %v, want none", got)
	}
	// δ=7: peel 10 → residual 6 ≥ 7? no: 6 < 7 → stop after 1.
	if got := AnomalousEdges(scores, 7); len(got) != 1 {
		t.Fatalf("δ=7: got %d edges, want 1", len(got))
	}
	// δ=2: peel 10 (res 6), peel 5 (res 1 < 2) → 2 edges.
	if got := AnomalousEdges(scores, 2); len(got) != 2 {
		t.Fatalf("δ=2: got %d edges, want 2", len(got))
	}
	// δ=0: residual can never drop below 0 → everything anomalous.
	if got := AnomalousEdges(scores, 0); len(got) != 3 {
		t.Fatalf("δ=0: got %d edges, want all 3", len(got))
	}
}

func TestAnomalousNodes(t *testing.T) {
	nodes := AnomalousNodes([]EdgeScore{{I: 3, J: 1}, {I: 1, J: 5}})
	want := []int{1, 3, 5}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v", nodes)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestSelectDeltaHitsTarget(t *testing.T) {
	tr := toyTransition(t, VariantCAD)
	trs := []Transition{tr}
	// Ask for 6 nodes on average: exactly the three planted edges'
	// endpoints.
	delta := SelectDelta(trs, 6)
	rep := Threshold(trs, delta)
	got := rep.Transitions[0].Nodes
	want := datagen.ToyAnomalousNodes()
	if len(got) != len(want) {
		t.Fatalf("nodes at auto-δ = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nodes at auto-δ = %v, want %v", got, want)
		}
	}
}

func TestSelectDeltaZeroTarget(t *testing.T) {
	tr := toyTransition(t, VariantCAD)
	delta := SelectDelta([]Transition{tr}, 0)
	rep := Threshold([]Transition{tr}, delta)
	if rep.Transitions[0].Anomalous() {
		t.Fatal("l=0 should produce no anomalies")
	}
}

func TestIdenticalGraphsScoreNothing(t *testing.T) {
	seq := datagen.Toy()
	same := graph.MustSequence([]*graph.Graph{seq.At(0), seq.At(0)})
	det := New(Config{Variant: VariantCAD})
	trs, err := det.Run(same)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs[0].Scores) != 0 {
		t.Fatalf("identical graphs produced %d scores", len(trs[0].Scores))
	}
}

func TestRunRejectsShortSequence(t *testing.T) {
	seq := datagen.Toy()
	one := graph.MustSequence([]*graph.Graph{seq.At(0)})
	if _, err := New(Config{}).Run(one); err == nil {
		t.Fatal("want error for single-instance sequence")
	}
}

func TestScoresSortedDescending(t *testing.T) {
	tr := toyTransition(t, VariantCAD)
	if !sort.SliceIsSorted(tr.Scores, func(a, b int) bool {
		return tr.Scores[a].Score > tr.Scores[b].Score
	}) {
		t.Fatal("scores not sorted descending")
	}
}

// Property: CAD scores are invariant under relabeling of the vertices
// (permutation equivariance): permuting both graphs permutes the score
// map but preserves the multiset of scores.
func TestQuickPermutationEquivariance(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := datagen.Toy()
		n := seq.N()
		perm := rng.Perm(n)

		permute := func(g *graph.Graph) *graph.Graph {
			b := graph.NewBuilder(n)
			for _, e := range g.Edges() {
				b.SetEdge(perm[e.I], perm[e.J], e.W)
			}
			return b.MustBuild()
		}
		pseq := graph.MustSequence([]*graph.Graph{permute(seq.At(0)), permute(seq.At(1))})

		det := New(Config{Variant: VariantCAD})
		a, err1 := det.Run(seq)
		b, err2 := det.Run(pseq)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(a[0].Scores) != len(b[0].Scores) {
			return false
		}
		// Compare score multisets.
		sa := make([]float64, len(a[0].Scores))
		sb := make([]float64, len(b[0].Scores))
		for i := range sa {
			sa[i] = a[0].Scores[i].Score
			sb[i] = b[0].Scores[i].Score
		}
		sort.Float64s(sa)
		sort.Float64s(sb)
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-6*(1+sa[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: node scores sum to twice the edge-score total (each edge
// contributes to both endpoints).
func TestQuickNodeScoreConservation(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		scores := make([]EdgeScore, 0, 10)
		for k := 0; k < 10; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			key := graph.MakeKey(i, j)
			scores = append(scores, EdgeScore{I: key.I, J: key.J, Score: rng.Float64()})
		}
		ns := NodeScores(n, scores)
		var nodeSum float64
		for _, s := range ns {
			nodeSum += s
		}
		return math.Abs(nodeSum-2*TotalScore(scores)) < 1e-9
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Infinite commute deltas (component changes) must be clamped to finite
// scores that still rank above everything else.
func TestInfClampOnComponentChange(t *testing.T) {
	// Instance 0: two components. Instance 1: joined by a new edge plus
	// a small benign change inside one component.
	b0 := graph.NewBuilder(6)
	b0.AddEdge(0, 1, 1)
	b0.AddEdge(1, 2, 1)
	b0.AddEdge(3, 4, 1)
	b0.AddEdge(4, 5, 1)
	g0 := b0.MustBuild()

	b1 := graph.NewBuilder(6)
	b1.AddEdge(0, 1, 1)
	b1.AddEdge(1, 2, 1.1) // benign tweak
	b1.AddEdge(3, 4, 1)
	b1.AddEdge(4, 5, 1)
	b1.AddEdge(2, 3, 1) // joins the components
	g1 := b1.MustBuild()

	og := commute.NewExact(g0)
	oh := commute.NewExact(g1)
	scores := TransitionScores(g0, g1, og, oh, VariantCAD, false)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	top := scores[0]
	if top.I != 2 || top.J != 3 {
		t.Fatalf("top edge = (%d,%d), want the joining edge (2,3)", top.I, top.J)
	}
	if math.IsInf(top.Score, 1) || math.IsNaN(top.Score) {
		t.Fatalf("clamp failed: %v", top.Score)
	}
	if len(scores) > 1 && top.Score <= scores[1].Score {
		t.Fatal("joining edge should outrank benign change")
	}
}
