// Package obs is the repository's stdlib-only observability layer:
// span-based pipeline tracing with nanosecond monotonic timings, typed
// attributes and parent/child nesting, plus a fixed-size ring buffer
// that retains the most recent finished traces for export (JSON and
// Chrome trace_event format — see export.go).
//
// The design constraint is the serving hot path: a push through
// core.OnlineDetector costs milliseconds, so instrumentation must cost
// nanoseconds when enabled and next to nothing when disabled. Both
// *Tracer and *Span are nil-safe — every method on a nil receiver is a
// no-op that returns nil — so instrumented code carries no conditionals
// beyond the receiver check the method itself performs, and a nil
// tracer reduces a fully instrumented Push to a handful of predictable
// nil checks (see BenchmarkSpanDisabled).
//
// Concurrency contract: one goroutine builds one trace. Different
// goroutines may build different traces against the same Tracer
// concurrently — publication into the ring is the only synchronized
// step. A trace becomes visible to Traces() when its root span Ends;
// from then on it is immutable, so readers (the /debug/traces handler,
// exporters) never race the writer.
package obs

import (
	"sync"
	"time"
)

// AttrKind discriminates the typed attribute union.
type AttrKind uint8

// Attribute kinds.
const (
	KindInt AttrKind = iota
	KindFloat
	KindString
	KindBool
)

// Attr is one typed span attribute. The value lives in the field the
// Kind selects; the flat union avoids interface boxing on the hot path
// (SetInt on an active span performs no allocation beyond the slice
// append).
type Attr struct {
	Key   string
	Kind  AttrKind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// Value returns the attribute's dynamic value (for encoders).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindFloat:
		return a.Float
	case KindString:
		return a.Str
	case KindBool:
		return a.Bool
	default:
		return nil
	}
}

// Span is one timed region of a trace. Build children with StartChild,
// attach attributes with the typed setters, and call End exactly once;
// ending a root span publishes the whole trace into its Tracer's ring.
// All methods are nil-safe no-ops.
type Span struct {
	name     string
	tracer   *Tracer // root spans only; nil on children
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Tracer hands out root spans and retains the most recent Capacity
// finished traces in a ring buffer. The zero value is not usable;
// construct with NewTracer. A nil *Tracer is a valid "tracing off"
// value: Start returns a nil span and everything downstream no-ops.
type Tracer struct {
	mu       sync.Mutex
	ring     []*Span // fixed capacity, oldest overwritten first
	next     int     // ring write cursor
	total    uint64  // finished traces ever published
	dropped  uint64  // finished traces evicted by the ring bound
	capacity int
}

// NewTracer returns a tracer retaining the most recent capacity
// finished traces (capacity < 1 is clamped to 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, 0, capacity), capacity: capacity}
}

// Start begins a new root span. On a nil tracer it returns nil, which
// disables the whole downstream span tree at the cost of nil checks.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{name: name, tracer: t, start: time.Now()}
}

// Capacity returns the ring bound.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// Traces returns the retained finished traces, oldest first. The roots
// are immutable; the returned slice is the caller's.
func (t *Tracer) Traces() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.ring))
	// The ring wraps at t.next once full: entries [next, len) are older
	// than [0, next).
	if len(t.ring) == t.capacity {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// Total returns the number of traces ever finished against this tracer.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns the number of finished traces the ring bound has
// evicted — the serving layer surfaces it as a trace-drop counter.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// publish stores a finished root, evicting the oldest when full.
func (t *Tracer) publish(root *Span) {
	t.mu.Lock()
	t.total++
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, root)
		t.next = len(t.ring) % t.capacity
	} else {
		t.ring[t.next] = root
		t.next = (t.next + 1) % t.capacity
		t.dropped++
	}
	t.mu.Unlock()
}

// StartChild begins a nested span under s (nil-safe: a nil parent
// yields a nil child).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{name: name, start: time.Now()}
	s.children = append(s.children, child)
	return child
}

// End freezes the span's duration (monotonic, from the time package's
// monotonic clock reading). Ending a root span publishes its trace;
// ending twice is a no-op so defer sp.End() composes with early exits.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.dur = time.Since(s.start)
	s.ended = true
	if s.tracer != nil {
		s.tracer.publish(s)
	}
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindInt, Int: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindFloat, Float: v})
}

// SetString attaches a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindString, Str: v})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Kind: KindBool, Bool: v})
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span's wall-clock start time.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns the span's monotonic duration (0 until End, and on
// nil spans).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Ended reports whether End has run.
func (s *Span) Ended() bool { return s != nil && s.ended }

// Children returns the nested spans in creation order. The slice must
// not be modified.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attrs returns the attached attributes in insertion order. The slice
// must not be modified.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs
}

// Attr looks up an attribute by key (last write wins; ok=false when
// absent or the span is nil).
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	for i := len(s.attrs) - 1; i >= 0; i-- {
		if s.attrs[i].Key == key {
			return s.attrs[i], true
		}
	}
	return Attr{}, false
}

// Child returns the first child span with the given name (nil when
// absent) — the lookup the stage-metrics and slow-push-log paths use.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.children {
		if c.name == name {
			return c
		}
	}
	return nil
}
