package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// TraceJSON is the hierarchical wire form of one span (the
// /debug/traces default format). Durations are nanoseconds; the start
// is wall-clock UnixNano so traces from different streams line up.
type TraceJSON struct {
	Name        string         `json:"name"`
	StartUnixNs int64          `json:"start_unix_ns"`
	DurationNs  int64          `json:"duration_ns"`
	Attrs       map[string]any `json:"attrs,omitempty"`
	Children    []TraceJSON    `json:"children,omitempty"`
}

// ToJSON converts a span tree into its wire form.
func (s *Span) ToJSON() TraceJSON {
	if s == nil {
		return TraceJSON{}
	}
	out := TraceJSON{
		Name:        s.name,
		StartUnixNs: s.start.UnixNano(),
		DurationNs:  s.dur.Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value()
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.ToJSON())
	}
	return out
}

// WriteJSON writes traces as an indented JSON array of hierarchical
// span trees.
func WriteJSON(w io.Writer, traces []*Span) error {
	out := make([]TraceJSON, len(traces))
	for i, tr := range traces {
		out[i] = tr.ToJSON()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" complete events carry a start timestamp and duration in
// microseconds; "M" metadata events name the synthetic threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDocument is the JSON Object Format variant of the trace file —
// the shape chrome://tracing and Perfetto both load.
type chromeDocument struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeGroupAttr is the root-span attribute WriteChrome groups traces
// by: each distinct value (the serving layer sets "stream") becomes one
// named synthetic thread, so concurrent streams render as parallel
// tracks instead of overlapping on one row.
const chromeGroupAttr = "stream"

// WriteChrome writes traces in Chrome trace_event JSON (the
// "?format=chrome" and -trace-out format). Spans become "ph":"X"
// complete events with microsecond timestamps on a common wall-clock
// axis; attributes become event args.
func WriteChrome(w io.Writer, traces []*Span) error {
	doc := chromeDocument{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// Assign one synthetic tid per group, in first-seen order, then emit
	// thread_name metadata sorted by group name for stable output.
	tids := map[string]int{}
	groupOf := func(root *Span) string {
		if a, ok := root.Attr(chromeGroupAttr); ok && a.Kind == KindString {
			return a.Str
		}
		return ""
	}
	for _, root := range traces {
		g := groupOf(root)
		if _, ok := tids[g]; !ok {
			tids[g] = len(tids) + 1
		}
	}
	groups := make([]string, 0, len(tids))
	for g := range tids {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		name := g
		if name == "" {
			name = "main"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[g],
			Args: map[string]any{"name": name},
		})
	}

	var emit func(sp *Span, tid int)
	emit = func(sp *Span, tid int) {
		ev := chromeEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   float64(sp.start.UnixNano()) / float64(time.Microsecond),
			Dur:  float64(sp.dur.Nanoseconds()) / float64(time.Microsecond),
			Pid:  1,
			Tid:  tid,
		}
		if len(sp.attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
		for _, c := range sp.children {
			emit(c, tid)
		}
	}
	for _, root := range traces {
		if root == nil {
			continue
		}
		emit(root, tids[groupOf(root)])
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
