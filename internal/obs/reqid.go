package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// RequestIDHeader is the header that carries a request's correlation id
// across every hop: client → router → owning node → (proxied) peer. A
// scatter-gather fan-out stamps one id on all its legs, so the spans
// and logs the legs produce on different nodes join on the same id.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted ids so a hostile header cannot bloat
// logs and span attributes.
const maxRequestIDLen = 64

// EnsureRequestID returns the request id from h, minting a random 8-byte
// hex id into the header when absent. Over-long ids are truncated (and
// rewritten into the header truncated, so every downstream hop agrees on
// the id). The returned id is "" only in the vanishingly unlikely case
// that the system's entropy source fails.
func EnsureRequestID(h http.Header) string {
	id := h.Get(RequestIDHeader)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
		h.Set(RequestIDHeader, id)
	}
	if id == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			id = hex.EncodeToString(b[:])
			h.Set(RequestIDHeader, id)
		}
	}
	return id
}
