package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLO tracks a push-latency objective over rolling windows and exposes
// multi-window burn rates, the SRE-workbook alerting signal: with a
// p99-style objective ("at most 1% of pushes slower than T"), a burn
// rate of 1.0 means the error budget is being consumed exactly as
// fast as it accrues; 14.4 on a short window is the classic page
// threshold. Observations land in fixed-width time buckets arranged in
// a ring sized to the longest window, so Observe is O(1), allocation
// free, and the whole tracker costs a few hundred bytes per stream.
//
// A nil *SLO is a valid "objective off" value: Observe no-ops and
// BurnRates returns nil, mirroring the nil-Tracer convention.
type SLO struct {
	objective float64 // latency threshold in seconds
	budget    float64 // allowed slow fraction (0.01 = p99 objective)
	interval  time.Duration
	windows   []time.Duration

	mu     sync.Mutex
	epochs []int64 // bucket epoch (unix time / interval), -1 when unused
	totals []int64
	slows  []int64
}

// BurnRate is one window's budget-consumption reading.
type BurnRate struct {
	Window string  `json:"window"`
	Total  int64   `json:"total"`
	Slow   int64   `json:"slow"`
	Rate   float64 `json:"burn_rate"`
}

// DefaultSLOWindows are the multi-window pair burn-rate alerting wants:
// a short window that reacts fast and a long window that filters noise.
var DefaultSLOWindows = []time.Duration{5 * time.Minute, time.Hour}

// sloBudget is the allowed slow fraction: objectives are phrased as
// p99 targets ("p99 push latency under T"), i.e. 1% error budget.
const sloBudget = 0.01

// sloInterval is the bucket width; windows are quantized to it.
const sloInterval = 10 * time.Second

// NewSLO returns a tracker for "at most 1% of observations above
// objectiveSeconds" over DefaultSLOWindows (or the given windows).
// objectiveSeconds <= 0 returns nil — the objective is off.
func NewSLO(objectiveSeconds float64, windows ...time.Duration) *SLO {
	if objectiveSeconds <= 0 {
		return nil
	}
	if len(windows) == 0 {
		windows = DefaultSLOWindows
	}
	longest := windows[0]
	for _, w := range windows[1:] {
		if w > longest {
			longest = w
		}
	}
	n := int(longest / sloInterval)
	if n < 1 {
		n = 1
	}
	s := &SLO{
		objective: objectiveSeconds,
		budget:    sloBudget,
		interval:  sloInterval,
		windows:   windows,
		epochs:    make([]int64, n),
		totals:    make([]int64, n),
		slows:     make([]int64, n),
	}
	for i := range s.epochs {
		s.epochs[i] = -1
	}
	return s
}

// Objective returns the latency threshold in seconds (0 on nil).
func (s *SLO) Objective() float64 {
	if s == nil {
		return 0
	}
	return s.objective
}

// Observe records one push latency. Nil-safe and allocation free.
func (s *SLO) Observe(seconds float64) {
	s.ObserveAt(time.Now(), seconds)
}

// ObserveAt is Observe with an explicit clock (tests).
func (s *SLO) ObserveAt(now time.Time, seconds float64) {
	if s == nil {
		return
	}
	epoch := now.UnixNano() / int64(s.interval)
	s.mu.Lock()
	i := int(epoch % int64(len(s.epochs)))
	if s.epochs[i] != epoch {
		s.epochs[i] = epoch
		s.totals[i] = 0
		s.slows[i] = 0
	}
	s.totals[i]++
	if seconds > s.objective {
		s.slows[i]++
	}
	s.mu.Unlock()
}

// BurnRates returns one reading per configured window (nil on nil).
func (s *SLO) BurnRates() []BurnRate {
	return s.BurnRatesAt(time.Now())
}

// BurnRatesAt is BurnRates with an explicit clock (tests).
func (s *SLO) BurnRatesAt(now time.Time) []BurnRate {
	if s == nil {
		return nil
	}
	epoch := now.UnixNano() / int64(s.interval)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BurnRate, 0, len(s.windows))
	for _, w := range s.windows {
		span := int64(w / s.interval)
		if span < 1 {
			span = 1
		}
		if span > int64(len(s.epochs)) {
			span = int64(len(s.epochs))
		}
		var total, slow int64
		for i := range s.epochs {
			if e := s.epochs[i]; e > epoch-span && e <= epoch {
				total += s.totals[i]
				slow += s.slows[i]
			}
		}
		br := BurnRate{Window: FormatWindow(w), Total: total, Slow: slow}
		if total > 0 {
			br.Rate = (float64(slow) / float64(total)) / s.budget
		}
		out = append(out, br)
	}
	return out
}

// FormatWindow renders a window duration compactly ("5m", "1h") for
// metric labels and JSON, trimming time.Duration's trailing zero units.
func FormatWindow(d time.Duration) string {
	if d%time.Hour == 0 {
		return fmt.Sprintf("%dh", d/time.Hour)
	}
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dm", d/time.Minute)
	}
	if d%time.Second == 0 {
		return fmt.Sprintf("%ds", d/time.Second)
	}
	return d.String()
}
