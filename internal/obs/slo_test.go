package obs

import (
	"strings"
	"testing"
	"time"
)

func TestSLOBurnRates(t *testing.T) {
	slo := NewSLO(0.05, 5*time.Minute, time.Hour)
	base := time.Unix(1700000000, 0)

	// 100 pushes in the last minute, 2 over the objective: 2% slow
	// against a 1% budget → burn rate 2 on both windows.
	for i := 0; i < 98; i++ {
		slo.ObserveAt(base.Add(time.Duration(i)*100*time.Millisecond), 0.01)
	}
	slo.ObserveAt(base.Add(30*time.Second), 0.2)
	slo.ObserveAt(base.Add(40*time.Second), 0.3)

	rates := slo.BurnRatesAt(base.Add(time.Minute))
	if len(rates) != 2 {
		t.Fatalf("got %d windows, want 2", len(rates))
	}
	for _, br := range rates {
		if br.Total != 100 || br.Slow != 2 {
			t.Fatalf("window %s: total=%d slow=%d, want 100/2", br.Window, br.Total, br.Slow)
		}
		if br.Rate < 1.99 || br.Rate > 2.01 {
			t.Fatalf("window %s: burn rate %v, want 2", br.Window, br.Rate)
		}
	}
	if rates[0].Window != "5m" || rates[1].Window != "1h" {
		t.Fatalf("window labels = %s/%s, want 5m/1h", rates[0].Window, rates[1].Window)
	}

	// Ten minutes later the 5m window has forgotten the slow pushes but
	// the 1h window still remembers them.
	later := slo.BurnRatesAt(base.Add(11 * time.Minute))
	if later[0].Total != 0 {
		t.Fatalf("5m window retained %d observations past its span", later[0].Total)
	}
	if later[1].Slow != 2 {
		t.Fatalf("1h window lost its slow pushes: %+v", later[1])
	}
}

func TestSLORingReuseClearsStaleBuckets(t *testing.T) {
	// Two observations exactly one ring length apart land in the same
	// bucket slot; the old epoch's counts must not leak into the new one.
	slo := NewSLO(0.05, time.Minute)
	base := time.Unix(1700000000, 0)
	slo.ObserveAt(base, 1.0) // slow
	ringSpan := time.Duration(len(slo.epochs)) * slo.interval
	slo.ObserveAt(base.Add(ringSpan), 0.001) // fast, same slot, new epoch
	rates := slo.BurnRatesAt(base.Add(ringSpan))
	if rates[0].Total != 1 || rates[0].Slow != 0 {
		t.Fatalf("stale bucket leaked: %+v", rates[0])
	}
}

func TestSLONilAndOff(t *testing.T) {
	var nilSLO *SLO
	nilSLO.Observe(1.0) // must not panic
	if nilSLO.BurnRates() != nil || nilSLO.Objective() != 0 {
		t.Fatalf("nil SLO not inert")
	}
	if NewSLO(0) != nil || NewSLO(-1) != nil {
		t.Fatalf("non-positive objective should return nil tracker")
	}
}

func TestFormatWindow(t *testing.T) {
	cases := map[time.Duration]string{
		5 * time.Minute:  "5m",
		time.Hour:        "1h",
		30 * time.Second: "30s",
		90 * time.Minute: "90m",
	}
	for d, want := range cases {
		if got := FormatWindow(d); got != want {
			t.Errorf("FormatWindow(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestRuntimeSamplerLifecycle(t *testing.T) {
	rs := NewRuntimeSampler(time.Millisecond)
	s := rs.Stats()
	if s.Goroutines <= 0 || s.GOMAXPROCS <= 0 || s.HeapAllocBytes == 0 {
		t.Fatalf("initial synchronous sample empty: %+v", s)
	}
	rs.Start()
	rs.Stop()
	rs.Stop() // idempotent

	var off *RuntimeSampler
	off.Start()
	off.Stop()
	if off.Stats() != (RuntimeStats{}) {
		t.Fatalf("nil sampler returned non-zero stats")
	}
	var sb strings.Builder
	off.WriteMetrics(&sb)
	if sb.Len() != 0 {
		t.Fatalf("nil sampler wrote metrics: %q", sb.String())
	}
	rs.WriteMetrics(&sb)
	for _, want := range []string{"cadd_go_goroutines", "cadd_go_heap_alloc_bytes", "cadd_go_gc_cycles_total", "cadd_go_sched_latency_p99_seconds"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("runtime metrics missing %s:\n%s", want, sb.String())
		}
	}
}
