package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// This file reassembles cross-process traces. Each process retains only
// the spans it recorded; the router gathers every process's wire-form
// roots for one trace ID and stitches them into a single tree by
// matching a root's parent_span_id attribute against the span_id minted
// on another process (see tracectx.go for how the IDs travel).

// NodeTraces is one process's contribution to a distributed trace: the
// process name ("router" or a node id) and its locally-rooted spans.
type NodeTraces struct {
	Node  string
	Roots []*Span
}

// SpanFromJSON reconstructs a span tree from its wire form. The result
// is a detached copy owned by the caller — stitching mutates child
// lists, so published (immutable) spans must round-trip through
// ToJSON/SpanFromJSON before being stitched. JSON numbers decode as
// float64; integral attribute values are restored to KindInt so
// re-export matches the original encoding.
func SpanFromJSON(tj TraceJSON) *Span {
	sp := &Span{
		name:  tj.Name,
		start: time.Unix(0, tj.StartUnixNs),
		dur:   time.Duration(tj.DurationNs),
		ended: true,
	}
	if len(tj.Attrs) > 0 {
		keys := make([]string, 0, len(tj.Attrs))
		for k := range tj.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := tj.Attrs[k].(type) {
			case string:
				sp.SetString(k, v)
			case bool:
				sp.SetBool(k, v)
			case float64:
				if v == float64(int64(v)) {
					sp.SetInt(k, int64(v))
				} else {
					sp.SetFloat(k, v)
				}
			case int64:
				sp.SetInt(k, v)
			case json.Number:
				if i, err := v.Int64(); err == nil {
					sp.SetInt(k, i)
				} else if f, err := v.Float64(); err == nil {
					sp.SetFloat(k, f)
				}
			}
		}
	}
	for _, c := range tj.Children {
		sp.children = append(sp.children, SpanFromJSON(c))
	}
	return sp
}

// Stitch links the per-process root spans of one distributed trace into
// cross-process trees: a root whose parent_span_id matches the span_id
// of a root from another (or the same) process becomes that root's
// child; roots with no retained parent stay top-level. Every root is
// tagged with its process via the node attribute when the recorder did
// not already do so. The spans are mutated — pass detached copies (see
// SpanFromJSON), never spans still published in a Tracer ring.
//
// Result order: top-level roots sorted by start time, so the router leg
// (which starts first) leads the stitched tree.
func Stitch(nodes []NodeTraces) []*Span {
	type owned struct {
		span *Span
		node string
	}
	var all []owned
	byID := make(map[string]*Span)
	for _, nt := range nodes {
		for _, root := range nt.Roots {
			if root == nil {
				continue
			}
			if _, ok := root.Attr(AttrNode); !ok && nt.Node != "" {
				root.SetString(AttrNode, nt.Node)
			}
			if a, ok := root.Attr(AttrSpanID); ok && a.Kind == KindString && a.Str != "" {
				byID[a.Str] = root
			}
			all = append(all, owned{span: root, node: nt.Node})
		}
	}
	var tops []*Span
	for _, o := range all {
		parent := (*Span)(nil)
		if a, ok := o.span.Attr(AttrParentSpanID); ok && a.Kind == KindString {
			if p := byID[a.Str]; p != nil && p != o.span {
				parent = p
			}
		}
		if parent != nil {
			parent.children = append(parent.children, o.span)
		} else {
			tops = append(tops, o.span)
		}
	}
	sort.SliceStable(tops, func(i, j int) bool { return tops[i].start.Before(tops[j].start) })
	return tops
}

// WriteChromeNodes writes a multi-process Chrome trace_event document:
// one pid per process (sorted by process name for stable output) with a
// process_name metadata event, and within each process the same
// stream-grouped synthetic threads WriteChrome uses. This is the
// "?format=chrome" shape of the router's stitched /debug/traces view —
// chrome://tracing and Perfetto render each cadd process as its own
// track group on a shared wall-clock axis.
func WriteChromeNodes(w io.Writer, nodes []NodeTraces) error {
	doc := chromeDocument{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	sorted := make([]NodeTraces, len(nodes))
	copy(sorted, nodes)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })

	groupOf := func(root *Span) string {
		if a, ok := root.Attr(chromeGroupAttr); ok && a.Kind == KindString {
			return a.Str
		}
		return ""
	}

	var emit func(sp *Span, pid, tid int)
	emit = func(sp *Span, pid, tid int) {
		ev := chromeEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   float64(sp.start.UnixNano()) / float64(time.Microsecond),
			Dur:  float64(sp.dur.Nanoseconds()) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  tid,
		}
		if len(sp.attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				ev.Args[a.Key] = a.Value()
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
		for _, c := range sp.children {
			emit(c, pid, tid)
		}
	}

	for i, nt := range sorted {
		pid := i + 1
		name := nt.Node
		if name == "" {
			name = "cadd"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
		tids := map[string]int{}
		var groups []string
		for _, root := range nt.Roots {
			g := groupOf(root)
			if _, ok := tids[g]; !ok {
				tids[g] = len(tids) + 1
				groups = append(groups, g)
			}
		}
		sort.Strings(groups)
		for _, g := range groups {
			name := g
			if name == "" {
				name = "main"
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tids[g],
				Args: map[string]any{"name": name},
			})
		}
		for _, root := range nt.Roots {
			if root == nil {
				continue
			}
			emit(root, pid, tids[groupOf(root)])
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
