package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
)

// TraceHeader carries the cross-process trace context between cadd
// processes (router → node → forwarded node). The value follows the
// W3C traceparent shape — "00-<32 hex trace id>-<16 hex span id>-01" —
// so existing tooling that understands traceparent can read it, while
// the dedicated header name keeps cadd's propagation independent of
// whatever tracing middleware a deployment may already run.
const TraceHeader = "X-Cadd-Trace"

// Trace-context attribute keys. Spans carry their identity as plain
// string attributes, so the propagation layer composes with the
// existing Span/Tracer machinery without widening the hot-path struct.
const (
	AttrTraceID      = "trace_id"
	AttrSpanID       = "span_id"
	AttrParentSpanID = "parent_span_id"
	// AttrNode names the process a span was recorded on ("router" or a
	// node id). Stitching injects it when the recording side did not.
	AttrNode = "node"
)

// TraceContext is one hop's view of a distributed trace: the
// trace-wide ID plus the span ID of the sender (the receiver's parent).
type TraceContext struct {
	TraceID string // 32 lowercase hex characters, not all zero
	SpanID  string // 16 lowercase hex characters, not all zero
}

// Valid reports whether both IDs have the required shape.
func (tc TraceContext) Valid() bool {
	return isHexID(tc.TraceID, 32) && isHexID(tc.SpanID, 16)
}

// String renders the header value ("" when invalid).
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-01"
}

// SetHeader stamps the context onto an outgoing header set (no-op when
// invalid).
func (tc TraceContext) SetHeader(h http.Header) {
	if v := tc.String(); v != "" {
		h.Set(TraceHeader, v)
	}
}

// ParseTraceHeader extracts the trace context from an incoming header
// set. Parsing is strict: anything but a well-formed
// "00-<32 hex>-<16 hex>-<2 hex>" value (unknown versions are rejected,
// all-zero IDs are rejected) returns ok=false, and the receiver falls
// back to minting a fresh local trace — a malformed upstream must
// never corrupt or join an unrelated trace.
func ParseTraceHeader(h http.Header) (TraceContext, bool) {
	return ParseTraceValue(h.Get(TraceHeader))
}

// ParseTraceValue parses one header value (see ParseTraceHeader).
func ParseTraceValue(v string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || !isHexID(parts[3], 2) {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: parts[1], SpanID: parts[2]}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// NewTraceID mints a random 128-bit trace ID as 32 hex characters.
func NewTraceID() string {
	var b [16]byte
	mustRand(b[:])
	return hex.EncodeToString(b[:])
}

// NewSpanID mints a 64-bit span ID as 16 hex characters, namespaced by
// the recording process: the first 4 characters are a stable hash of
// the node name, the remaining 12 are random. Namespacing makes span
// IDs minted independently on different nodes collision-free in
// practice and lets a human eyeball which process produced an ID when
// reading a stitched trace.
func NewSpanID(node string) string {
	h := fnv.New32a()
	h.Write([]byte(node))
	var b [6]byte
	mustRand(b[:])
	return fmt.Sprintf("%04x%s", uint16(h.Sum32()), hex.EncodeToString(b[:]))
}

func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the platforms we run on; dying loudly
		// beats silently reusing an ID.
		panic("obs: crypto/rand failed: " + err.Error())
	}
}
