package obs

import (
	"fmt"
	"io"
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSampler periodically snapshots Go runtime health — GC pauses,
// heap residency, goroutine count, scheduler latency — on a background
// goroutine, so scrapes and /statusz reads are a mutex-guarded struct
// copy instead of a stop-the-world ReadMemStats on the serving path.
// A nil *RuntimeSampler is a valid "sampling off" value: Stats returns
// zeros and WriteMetrics writes nothing, costing the push hot path
// exactly one nil check.
type RuntimeSampler struct {
	interval time.Duration

	mu    sync.Mutex
	stats RuntimeStats

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// RuntimeStats is one sample of runtime health (the /statusz "runtime"
// section).
type RuntimeStats struct {
	SampledUnixNs       int64   `json:"sampled_unix_ns"`
	Goroutines          int     `json:"goroutines"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
	HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes        uint64  `json:"heap_sys_bytes"`
	HeapObjects         uint64  `json:"heap_objects"`
	StackSysBytes       uint64  `json:"stack_sys_bytes"`
	GCCycles            uint32  `json:"gc_cycles"`
	GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	LastGCPauseSeconds  float64 `json:"last_gc_pause_seconds"`
	SchedLatencyP50     float64 `json:"sched_latency_p50_seconds"`
	SchedLatencyP99     float64 `json:"sched_latency_p99_seconds"`
}

// NewRuntimeSampler returns a sampler taking one sample per interval
// (interval <= 0 defaults to 10s). The first sample is taken
// synchronously so Stats is never zero after construction; call Start
// to begin background sampling and Stop to halt it.
func NewRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	rs := &RuntimeSampler{
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	rs.sample()
	return rs
}

// Start launches the background sampling goroutine.
func (rs *RuntimeSampler) Start() {
	if rs == nil {
		return
	}
	go func() {
		defer close(rs.done)
		tick := time.NewTicker(rs.interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				rs.sample()
			case <-rs.stop:
				return
			}
		}
	}()
}

// Stop halts background sampling and waits for the goroutine to exit.
// Safe to call more than once and without a prior Start.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	rs.stopOnce.Do(func() { close(rs.stop) })
	select {
	case <-rs.done:
	case <-time.After(time.Second):
	}
}

// Stats returns the most recent sample (zero value on nil).
func (rs *RuntimeSampler) Stats() RuntimeStats {
	if rs == nil {
		return RuntimeStats{}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.stats
}

func (rs *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeStats{
		SampledUnixNs:       time.Now().UnixNano(),
		Goroutines:          runtime.NumGoroutine(),
		GOMAXPROCS:          runtime.GOMAXPROCS(0),
		HeapAllocBytes:      ms.HeapAlloc,
		HeapSysBytes:        ms.HeapSys,
		HeapObjects:         ms.HeapObjects,
		StackSysBytes:       ms.StackSys,
		GCCycles:            ms.NumGC,
		GCPauseTotalSeconds: float64(ms.PauseTotalNs) / 1e9,
	}
	if ms.NumGC > 0 {
		s.LastGCPauseSeconds = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
	}
	sched := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(sched)
	if sched[0].Value.Kind() == metrics.KindFloat64Histogram {
		h := sched[0].Value.Float64Histogram()
		s.SchedLatencyP50 = histQuantile(h, 0.50)
		s.SchedLatencyP99 = histQuantile(h, 0.99)
	}
	rs.mu.Lock()
	rs.stats = s
	rs.mu.Unlock()
}

// histQuantile estimates a quantile from a runtime/metrics histogram,
// attributing each bucket's mass to its upper bound (infinite bounds
// fall back to the finite edge below).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i] .. Buckets[i+1].
			hi := i + 1
			if hi >= len(h.Buckets) {
				hi = len(h.Buckets) - 1
			}
			edge := h.Buckets[hi]
			if edge > 1e300 || edge < -1e300 { // ±Inf edge
				edge = h.Buckets[i]
			}
			return edge
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// WriteMetrics appends the sampler's gauges and counters in Prometheus
// text format (no-op on nil) — wired into /metrics via the serving
// layer's ExtraMetrics hooks.
func (rs *RuntimeSampler) WriteMetrics(w io.Writer) {
	if rs == nil {
		return
	}
	s := rs.Stats()
	writeOne := func(name, help, typ string, value any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, value)
	}
	writeOne("cadd_go_goroutines", "Live goroutines at the last runtime sample.", "gauge", s.Goroutines)
	writeOne("cadd_go_gomaxprocs", "GOMAXPROCS at the last runtime sample.", "gauge", s.GOMAXPROCS)
	writeOne("cadd_go_heap_alloc_bytes", "Heap bytes allocated and in use.", "gauge", s.HeapAllocBytes)
	writeOne("cadd_go_heap_sys_bytes", "Heap bytes obtained from the OS.", "gauge", s.HeapSysBytes)
	writeOne("cadd_go_heap_objects", "Live heap objects.", "gauge", s.HeapObjects)
	writeOne("cadd_go_stack_sys_bytes", "Stack memory obtained from the OS.", "gauge", s.StackSysBytes)
	writeOne("cadd_go_gc_cycles_total", "Completed GC cycles.", "counter", s.GCCycles)
	writeOne("cadd_go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", "counter", formatMetricFloat(s.GCPauseTotalSeconds))
	writeOne("cadd_go_last_gc_pause_seconds", "Duration of the most recent GC pause.", "gauge", formatMetricFloat(s.LastGCPauseSeconds))
	writeOne("cadd_go_sched_latency_p50_seconds", "Median goroutine scheduling latency.", "gauge", formatMetricFloat(s.SchedLatencyP50))
	writeOne("cadd_go_sched_latency_p99_seconds", "99th-percentile goroutine scheduling latency.", "gauge", formatMetricFloat(s.SchedLatencyP99))
}

func formatMetricFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
