package obs

import "testing"

// BenchmarkSpanDisabled measures the cost the instrumented hot path
// pays when tracing is off: a nil tracer's Start plus the full set of
// nil-receiver span calls a traced Push performs. This must stay in the
// nanoseconds — it is the "< 2% push regression with tracing disabled"
// budget of the observability layer.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetString("kind", "embedding")
		st.SetInt("iters", 12)
		st.End()
		sc := root.StartChild("score")
		sc.End()
		root.End()
	}
}

// BenchmarkSpanEnabled is the enabled-path counterpart: one small trace
// built and published per iteration.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetString("kind", "embedding")
		st.SetInt("iters", 12)
		st.End()
		sc := root.StartChild("score")
		sc.End()
		root.End()
	}
}
