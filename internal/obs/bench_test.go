package obs

import "testing"

// BenchmarkSpanDisabled measures the cost the instrumented hot path
// pays when tracing is off: a nil tracer's Start plus the full set of
// nil-receiver span calls a traced Push performs. This must stay in the
// nanoseconds — it is the "< 2% push regression with tracing disabled"
// budget of the observability layer.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetString("kind", "embedding")
		st.SetInt("iters", 12)
		st.End()
		sc := root.StartChild("score")
		sc.End()
		root.End()
	}
}

// BenchmarkSpanEnabled is the enabled-path counterpart: one small trace
// built and published per iteration.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetString("kind", "embedding")
		st.SetInt("iters", 12)
		st.End()
		sc := root.StartChild("score")
		sc.End()
		root.End()
	}
}

// BenchmarkObsDisabledPushPath measures the full per-push
// instrumentation surface with everything off: nil tracer, nil SLO
// tracker, nil runtime sampler. This is what an untraced push pays for
// the distributed-observability layer — it must stay allocation free
// (TestObsDisabledZeroAllocs pins that) and in the nanoseconds.
func BenchmarkObsDisabledPushPath(b *testing.B) {
	var tr *Tracer
	var slo *SLO
	var rs *RuntimeSampler
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetString("kind", "embedding")
		st.SetInt("iters", 12)
		st.End()
		sc := root.StartChild("score")
		sc.End()
		jp := root.StartChild("journal")
		jp.End()
		root.End()
		slo.Observe(0.001)
		_ = rs.Stats().Goroutines
	}
}

// BenchmarkSLOEnabled measures one Observe against a live tracker: a
// bucket index, two adds, a mutex — and zero allocations.
func BenchmarkSLOEnabled(b *testing.B) {
	slo := NewSLO(0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		slo.Observe(0.001)
	}
}

// TestObsDisabledZeroAllocs enforces in CI what the disabled-path
// benchmarks report: with tracing, the SLO tracker, and the runtime
// sampler all off, the push hot path's instrumentation allocates
// nothing.
func TestObsDisabledZeroAllocs(t *testing.T) {
	var tr *Tracer
	var slo *SLO
	var rs *RuntimeSampler
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Start("push")
		st := root.StartChild("oracle")
		st.SetInt("iters", 12)
		st.End()
		root.End()
		slo.Observe(0.001)
		_ = rs.Stats()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability path allocates: %v allocs/op", allocs)
	}
}

// TestSLOEnabledZeroAllocs pins that a live SLO tracker's Observe is
// allocation free — it runs on every push once an objective is set.
func TestSLOEnabledZeroAllocs(t *testing.T) {
	slo := NewSLO(0.05)
	allocs := testing.AllocsPerRun(1000, func() {
		slo.Observe(0.001)
	})
	if allocs != 0 {
		t.Fatalf("SLO.Observe allocates: %v allocs/op", allocs)
	}
}
