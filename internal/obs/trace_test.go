package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanNestingAndTiming(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("push")
	a := root.StartChild("oracle")
	time.Sleep(time.Millisecond)
	inner := a.StartChild("solve")
	inner.End()
	a.End()
	b := root.StartChild("score")
	b.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Name() != "push" {
		t.Fatalf("root name %q", got.Name())
	}
	if len(got.Children()) != 2 {
		t.Fatalf("got %d children, want 2", len(got.Children()))
	}
	if got.Child("oracle") == nil || got.Child("score") == nil {
		t.Fatalf("missing stage children: %v", got.Children())
	}
	if got.Child("oracle").Child("solve") == nil {
		t.Fatalf("missing nested solve span")
	}
	if d := got.Child("oracle").Duration(); d < time.Millisecond {
		t.Errorf("oracle duration %v, want >= 1ms", d)
	}
	if got.Duration() < got.Child("oracle").Duration() {
		t.Errorf("root %v shorter than child %v", got.Duration(), got.Child("oracle").Duration())
	}
	if !got.Ended() {
		t.Errorf("root not marked ended")
	}
}

func TestTypedAttrs(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start("s")
	sp.SetInt("iters", 42)
	sp.SetFloat("tol", 1e-5)
	sp.SetString("mode", "warm")
	sp.SetBool("reused", true)
	sp.End()

	if a, ok := sp.Attr("iters"); !ok || a.Kind != KindInt || a.Int != 42 {
		t.Errorf("iters attr = %+v, %v", a, ok)
	}
	if a, ok := sp.Attr("tol"); !ok || a.Kind != KindFloat || a.Float != 1e-5 {
		t.Errorf("tol attr = %+v, %v", a, ok)
	}
	if a, ok := sp.Attr("mode"); !ok || a.Kind != KindString || a.Str != "warm" {
		t.Errorf("mode attr = %+v, %v", a, ok)
	}
	if a, ok := sp.Attr("reused"); !ok || a.Kind != KindBool || !a.Bool {
		t.Errorf("reused attr = %+v, %v", a, ok)
	}
	if _, ok := sp.Attr("absent"); ok {
		t.Errorf("absent attr found")
	}
	// Last write wins.
	sp2 := tr.Start("s2")
	sp2.SetString("mode", "cold")
	sp2.SetString("mode", "warm")
	if a, _ := sp2.Attr("mode"); a.Str != "warm" {
		t.Errorf("last-write attr = %q, want warm", a.Str)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	// Every method must be callable on the nil span without panicking.
	child := sp.StartChild("y")
	if child != nil {
		t.Fatalf("nil span returned non-nil child")
	}
	sp.SetInt("a", 1)
	sp.SetFloat("b", 2)
	sp.SetString("c", "d")
	sp.SetBool("e", true)
	sp.End()
	if sp.Name() != "" || sp.Duration() != 0 || sp.Ended() || sp.Children() != nil || sp.Attrs() != nil {
		t.Errorf("nil span accessors not zero")
	}
	if sp.Child("y") != nil {
		t.Errorf("nil span Child non-nil")
	}
	if tr.Traces() != nil || tr.Dropped() != 0 || tr.Total() != 0 || tr.Capacity() != 0 {
		t.Errorf("nil tracer accessors not zero")
	}
}

func TestRingEvictionOldestFirstAndDropCount(t *testing.T) {
	tr := NewTracer(3)
	names := []string{"t0", "t1", "t2", "t3", "t4"}
	for _, n := range names {
		tr.Start(n).End()
	}
	got := tr.Traces()
	if len(got) != 3 {
		t.Fatalf("got %d traces, want 3", len(got))
	}
	for i, want := range []string{"t2", "t3", "t4"} {
		if got[i].Name() != want {
			t.Errorf("trace[%d] = %q, want %q (oldest first)", i, got[i].Name(), want)
		}
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	if tr.Total() != 5 {
		t.Errorf("total = %d, want 5", tr.Total())
	}
}

func TestDoubleEndKeepsFirstDuration(t *testing.T) {
	tr := NewTracer(2)
	sp := tr.Start("once")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // no-op: must not re-publish or re-time
	if sp.Duration() != d {
		t.Errorf("duration changed on second End: %v -> %v", d, sp.Duration())
	}
	if got := len(tr.Traces()); got != 1 {
		t.Errorf("trace published %d times, want 1", got)
	}
}

// buildSample constructs a deterministic two-trace set for the export
// tests: one trace tagged stream=a, one untagged.
func buildSample(t *testing.T) []*Span {
	t.Helper()
	tr := NewTracer(8)
	root := tr.Start("push")
	root.SetString("stream", "a")
	root.SetInt("instance", 7)
	or := root.StartChild("oracle")
	or.SetString("kind", "embedding")
	or.StartChild("solve").End()
	or.End()
	root.StartChild("score").End()
	root.End()

	lone := tr.Start("score_only")
	lone.End()
	return tr.Traces()
}

func TestWriteJSONRoundTrips(t *testing.T) {
	traces := buildSample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var got []TraceJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d traces, want 2", len(got))
	}
	if got[0].Name != "push" || got[0].Attrs["stream"] != "a" {
		t.Errorf("trace 0 = %+v", got[0])
	}
	if got[0].Attrs["instance"] != float64(7) { // JSON numbers decode as float64
		t.Errorf("instance attr = %v", got[0].Attrs["instance"])
	}
	if len(got[0].Children) != 2 || got[0].Children[0].Name != "oracle" {
		t.Errorf("children = %+v", got[0].Children)
	}
	if len(got[0].Children[0].Children) != 1 || got[0].Children[0].Children[0].Name != "solve" {
		t.Errorf("nested children = %+v", got[0].Children[0].Children)
	}
}

// TestWriteChromeFormat pins the Chrome trace_event JSON shape the
// acceptance criteria require: an object with a traceEvents array of
// "X" complete events (plus "M" thread metadata), microsecond
// timestamps, and span attributes as args.
func TestWriteChromeFormat(t *testing.T) {
	traces := buildSample(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, traces); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" {
				t.Errorf("metadata event name %q", ev.Name)
			}
		case "X":
			complete++
			names[ev.Name] = true
			if ev.Pid != 1 || ev.Tid < 1 {
				t.Errorf("event %q pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
			if ev.Ts <= 0 {
				t.Errorf("event %q ts = %v", ev.Name, ev.Ts)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// Two groups (stream "a" and the untagged default) → two metadata
	// events; 4 spans in the tagged trace tree + 1 lone root.
	if meta != 2 {
		t.Errorf("got %d thread_name events, want 2", meta)
	}
	if complete != 5 {
		t.Errorf("got %d complete events, want 5", complete)
	}
	for _, want := range []string{"push", "oracle", "solve", "score", "score_only"} {
		if !names[want] {
			t.Errorf("missing event %q (have %v)", want, names)
		}
	}
	// Spans of one trace must share a tid; distinct groups get distinct tids.
	tidOf := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			tidOf[ev.Name] = ev.Tid
		}
	}
	if tidOf["push"] != tidOf["oracle"] || tidOf["push"] != tidOf["solve"] {
		t.Errorf("trace spans split across tids: %v", tidOf)
	}
	if tidOf["push"] == tidOf["score_only"] {
		t.Errorf("distinct groups share tid %d", tidOf["push"])
	}
}

func TestTracerConcurrentPublish(t *testing.T) {
	tr := NewTracer(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				sp := tr.Start("w")
				sp.StartChild("c").End()
				sp.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tr.Total() != 800 {
		t.Errorf("total = %d, want 800", tr.Total())
	}
	if got := len(tr.Traces()); got != 64 {
		t.Errorf("retained %d, want 64", got)
	}
	if tr.Dropped() != 800-64 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 800-64)
	}
}
