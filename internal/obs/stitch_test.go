package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// buildRemoteRoot fabricates one node's published root span for a
// distributed trace, already in detached (stitchable) form.
func buildRemoteRoot(t *testing.T, name, node, traceID, spanID, parentID string, start time.Time, dur time.Duration) *Span {
	t.Helper()
	tr := NewTracer(4)
	root := tr.Start(name)
	root.SetString("stream", "s1")
	root.SetString(AttrTraceID, traceID)
	root.SetString(AttrSpanID, spanID)
	if parentID != "" {
		root.SetString(AttrParentSpanID, parentID)
	}
	root.SetString(AttrNode, node)
	child := root.StartChild("oracle")
	child.End()
	root.End()
	sp := SpanFromJSON(root.ToJSON())
	// Pin the fabricated timeline so stitch ordering is deterministic.
	sp.start = start
	sp.dur = dur
	return sp
}

func TestStitchCrossNodeTree(t *testing.T) {
	traceID := NewTraceID()
	routerSpan := NewSpanID("router")
	nodeSpan := NewSpanID("cadd-b")
	base := time.Unix(1700000000, 0)

	router := buildRemoteRoot(t, "route", "router", traceID, routerSpan, "", base, 10*time.Millisecond)
	node := buildRemoteRoot(t, "push", "cadd-b", traceID, nodeSpan, routerSpan, base.Add(time.Millisecond), 8*time.Millisecond)
	orphan := buildRemoteRoot(t, "push", "cadd-c", traceID, NewSpanID("cadd-c"), NewSpanID("nowhere"), base.Add(2*time.Millisecond), time.Millisecond)

	tops := Stitch([]NodeTraces{
		{Node: "cadd-b", Roots: []*Span{node}},
		{Node: "router", Roots: []*Span{router}},
		{Node: "cadd-c", Roots: []*Span{orphan}},
	})
	if len(tops) != 2 {
		t.Fatalf("got %d top-level roots, want 2 (stitched tree + orphan)", len(tops))
	}
	// Sorted by start: router leg first.
	if tops[0].Name() != "route" {
		t.Fatalf("first top-level root = %q, want route", tops[0].Name())
	}
	var stitched *Span
	for _, c := range tops[0].Children() {
		if c.Name() == "push" {
			stitched = c
		}
	}
	if stitched == nil {
		t.Fatalf("node push span not stitched under router route span")
	}
	if a, ok := stitched.Attr(AttrNode); !ok || a.Str != "cadd-b" {
		t.Fatalf("stitched span node attr = %v, want cadd-b", a)
	}
	if stitched.Child("oracle") == nil {
		t.Fatalf("stitched span lost its local children")
	}
}

func TestSpanFromJSONRoundTrip(t *testing.T) {
	tr := NewTracer(1)
	root := tr.Start("push")
	root.SetString("stream", "s9")
	root.SetInt("instance", 7)
	root.SetFloat("score", 1.25)
	root.SetBool("sync", true)
	c := root.StartChild("score")
	c.SetInt("n", 3)
	c.End()
	root.End()

	// Through real JSON bytes, as the router receives it.
	raw, err := json.Marshal(root.ToJSON())
	if err != nil {
		t.Fatal(err)
	}
	var tj TraceJSON
	if err := json.Unmarshal(raw, &tj); err != nil {
		t.Fatal(err)
	}
	got := SpanFromJSON(tj)
	if got.Name() != "push" || len(got.Children()) != 1 {
		t.Fatalf("shape lost: name=%q children=%d", got.Name(), len(got.Children()))
	}
	if a, _ := got.Attr("instance"); a.Kind != KindInt || a.Int != 7 {
		t.Fatalf("int attr not restored: %+v", a)
	}
	if a, _ := got.Attr("score"); a.Kind != KindFloat || a.Float != 1.25 {
		t.Fatalf("float attr not restored: %+v", a)
	}
	if a, _ := got.Attr("sync"); a.Kind != KindBool || !a.Bool {
		t.Fatalf("bool attr not restored: %+v", a)
	}
	if got.Duration() != root.Duration() {
		t.Fatalf("duration drift: %v vs %v", got.Duration(), root.Duration())
	}
}

func TestWriteChromeNodesOnePidPerNode(t *testing.T) {
	traceID := NewTraceID()
	base := time.Unix(1700000000, 0)
	router := buildRemoteRoot(t, "route", "router", traceID, NewSpanID("router"), "", base, 10*time.Millisecond)
	node := buildRemoteRoot(t, "push", "cadd-b", traceID, NewSpanID("cadd-b"), "", base.Add(time.Millisecond), 8*time.Millisecond)

	var buf bytes.Buffer
	err := WriteChromeNodes(&buf, []NodeTraces{
		{Node: "router", Roots: []*Span{router}},
		{Node: "cadd-b", Roots: []*Span{node}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc not JSON: %v", err)
	}
	pidOf := map[string]int{}
	xPids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pidOf[ev.Args["name"].(string)] = ev.Pid
		}
		if ev.Ph == "X" {
			xPids[ev.Name] = ev.Pid
		}
	}
	if len(pidOf) != 2 {
		t.Fatalf("process_name metadata for %d processes, want 2: %v", len(pidOf), pidOf)
	}
	if pidOf["router"] == pidOf["cadd-b"] {
		t.Fatalf("router and node share pid %d", pidOf["router"])
	}
	if xPids["route"] != pidOf["router"] || xPids["push"] != pidOf["cadd-b"] {
		t.Fatalf("span events landed in wrong processes: %v vs %v", xPids, pidOf)
	}
}
