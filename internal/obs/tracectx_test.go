package obs

import (
	"net/http"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID("cadd-a")}
	if !tc.Valid() {
		t.Fatalf("minted context invalid: %+v", tc)
	}
	h := http.Header{}
	tc.SetHeader(h)
	got, ok := ParseTraceHeader(h)
	if !ok {
		t.Fatalf("ParseTraceHeader rejected %q", h.Get(TraceHeader))
	}
	if got != tc {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, tc)
	}
}

func TestParseTraceValueRejectsMalformed(t *testing.T) {
	valid := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID("n")}.String()
	bad := []string{
		"",
		"garbage",
		"00-short-0011223344556677-01",
		"00-" + strings.Repeat("0", 32) + "-0011223344556677-01",     // all-zero trace id
		"00-" + NewTraceID() + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"01-" + NewTraceID() + "-0011223344556677-01",                // unknown version
		strings.ToUpper(valid),                                       // uppercase hex
		valid + "-extra",
		"00-" + strings.Repeat("g", 32) + "-0011223344556677-01", // non-hex
	}
	for _, v := range bad {
		if _, ok := ParseTraceValue(v); ok {
			t.Errorf("ParseTraceValue(%q) accepted, want reject", v)
		}
	}
	if _, ok := ParseTraceValue(valid); !ok {
		t.Fatalf("ParseTraceValue rejected valid %q", valid)
	}
	// Surrounding whitespace is tolerated (header values in the wild).
	if _, ok := ParseTraceValue("  " + valid + " "); !ok {
		t.Fatalf("ParseTraceValue rejected padded valid value")
	}
}

func TestNewSpanIDNamespacing(t *testing.T) {
	a1, a2 := NewSpanID("cadd-a"), NewSpanID("cadd-a")
	b1 := NewSpanID("cadd-b")
	if a1[:4] != a2[:4] {
		t.Fatalf("same node, different prefixes: %s vs %s", a1, a2)
	}
	if a1[:4] == b1[:4] {
		t.Fatalf("different nodes share prefix: %s vs %s", a1, b1)
	}
	if a1 == a2 {
		t.Fatalf("two span ids from one node collide: %s", a1)
	}
	for _, id := range []string{a1, a2, b1} {
		if !isHexID(id, 16) {
			t.Fatalf("span id %q is not 16 hex chars", id)
		}
	}
	if !isHexID(NewTraceID(), 32) {
		t.Fatalf("trace id is not 32 hex chars")
	}
}
