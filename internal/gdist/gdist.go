// Package gdist implements whole-graph distance measures and the
// distance-time-series event detector built on them — the family of
// related work the paper's §2.4.2 discusses ([18] Pincombe's ARMA
// residual analysis, [13] spectral distances, [11] edit distances).
//
// These detectors answer only "did the graph change anomalously at t?";
// none of their distances decomposes edge-wise in the sense of the
// paper's equation (2), which is exactly why they cannot *localize* and
// why the paper introduces CAD. The package exists so the repository
// covers that contrast executably: the tests show the detectors firing
// on the right transitions while offering no edge attribution.
package gdist

import (
	"fmt"
	"math"

	"dyngraph/internal/dense"
	"dyngraph/internal/graph"
	"dyngraph/internal/spectral"
)

// EditDistance is the weighted graph edit distance restricted to a
// fixed vertex set: the total edge-weight change Σ|A(i,j) − B(i,j)|
// over i < j (edge insertions and deletions count their full weight).
// It returns graph.ErrVertexMismatch if the vertex counts differ.
func EditDistance(a, b *graph.Graph) (float64, error) {
	keys, err := graph.DiffSupport(a, b)
	if err != nil {
		return 0, err
	}
	var d float64
	for _, k := range keys {
		d += math.Abs(a.Weight(k.I, k.J) - b.Weight(k.I, k.J))
	}
	return d, nil
}

// SpectralDistance is the l2 distance between the k largest adjacency
// eigenvalues of the two graphs (Jovanović–Stanić style, truncated).
// Graphs with fewer than k vertices use the full spectrum. Small graphs
// (n ≤ 64) use the dense eigensolver; larger ones Lanczos.
func SpectralDistance(a, b *graph.Graph, k int) (float64, error) {
	if a.N() != b.N() {
		return 0, fmt.Errorf("gdist: SpectralDistance on different vertex sets (%d vs %d)", a.N(), b.N())
	}
	if k <= 0 {
		k = 6
	}
	if k > a.N() {
		k = a.N()
	}
	sa, err := topSpectrum(a, k)
	if err != nil {
		return 0, err
	}
	sb, err := topSpectrum(b, k)
	if err != nil {
		return 0, err
	}
	var d float64
	for i := range sa {
		diff := sa[i] - sb[i]
		d += diff * diff
	}
	return math.Sqrt(d), nil
}

func topSpectrum(g *graph.Graph, k int) ([]float64, error) {
	if g.N() <= 64 {
		vals, _ := dense.EigenSym(g.DenseAdjacency())
		out := make([]float64, k)
		for i := 0; i < k; i++ {
			out[i] = vals[len(vals)-1-i]
		}
		return out, nil
	}
	vals, _, err := spectral.Largest(g.Adjacency(), k, spectral.Options{Seed: 1})
	return vals, err
}

// DistanceFunc is a pluggable whole-graph distance.
type DistanceFunc func(a, b *graph.Graph) (float64, error)

// Edit adapts EditDistance to DistanceFunc.
func Edit(a, b *graph.Graph) (float64, error) { return EditDistance(a, b) }

// Spectral returns a DistanceFunc using the k leading eigenvalues.
func Spectral(k int) DistanceFunc {
	return func(a, b *graph.Graph) (float64, error) { return SpectralDistance(a, b, k) }
}

// SeriesConfig configures the Pincombe-style detector.
type SeriesConfig struct {
	// Phi is the AR(1) coefficient (default 0.6). It is fixed rather
	// than estimated: with the short sequences of this domain (tens of
	// instances) estimation degenerates to a smoothing constant anyway.
	Phi float64
	// Threshold is the residual z-score above which a transition is
	// flagged (default 2).
	Threshold float64
}

func (c SeriesConfig) phi() float64 {
	if c.Phi <= 0 || c.Phi >= 1 {
		return 0.6
	}
	return c.Phi
}

func (c SeriesConfig) threshold() float64 {
	if c.Threshold <= 0 {
		return 2
	}
	return c.Threshold
}

// SeriesResult is the event-detection output.
type SeriesResult struct {
	// Distances[t] = d(G_t, G_{t+1}).
	Distances []float64
	// Residuals[t] is the AR(1) innovation at t.
	Residuals []float64
	// Flagged[t] reports whether transition t's residual z-score
	// exceeded the threshold.
	Flagged []bool
}

// DetectSeries runs the [18]-style pipeline: distance per transition,
// AR(1) innovations, z-score thresholding. Note what is absent from the
// result: any notion of *which edges* caused a flagged transition.
func DetectSeries(seq *graph.Sequence, dist DistanceFunc, cfg SeriesConfig) (*SeriesResult, error) {
	if seq.T() < 2 {
		return nil, fmt.Errorf("gdist: sequence needs at least 2 instances, got %d", seq.T())
	}
	nTr := seq.T() - 1
	res := &SeriesResult{
		Distances: make([]float64, nTr),
		Residuals: make([]float64, nTr),
		Flagged:   make([]bool, nTr),
	}
	for t := 0; t < nTr; t++ {
		d, err := dist(seq.At(t), seq.At(t+1))
		if err != nil {
			return nil, fmt.Errorf("gdist: transition %d: %w", t, err)
		}
		res.Distances[t] = d
	}
	phi := cfg.phi()
	// AR(1) innovations around the series mean.
	var mean float64
	for _, d := range res.Distances {
		mean += d
	}
	mean /= float64(nTr)
	prev := 0.0
	for t := 0; t < nTr; t++ {
		centered := res.Distances[t] - mean
		res.Residuals[t] = centered - phi*prev
		prev = centered
	}
	// Leave-one-out z-score thresholding: each residual is compared
	// against the mean and deviation of the *other* residuals, so a
	// single large spike cannot inflate its own denominator — the
	// standard correction for the short series this domain produces.
	var sum, sumSq float64
	for _, r := range res.Residuals {
		sum += r
		sumSq += r * r
	}
	thr := cfg.threshold()
	for t, r := range res.Residuals {
		if nTr < 2 {
			break
		}
		rest := float64(nTr - 1)
		looMean := (sum - r) / rest
		looVar := (sumSq-r*r)/rest - looMean*looMean
		if looVar < 0 {
			looVar = 0
		}
		looSD := math.Sqrt(looVar)
		excess := r - looMean
		if looSD == 0 {
			// The other residuals are constant: any strictly larger
			// value is an unambiguous outlier.
			res.Flagged[t] = excess > 1e-12*(1+math.Abs(looMean))
			continue
		}
		res.Flagged[t] = excess/looSD > thr
	}
	return res, nil
}
