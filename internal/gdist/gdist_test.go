package gdist

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dyngraph/internal/core"
	"dyngraph/internal/datagen"
	"dyngraph/internal/graph"
)

func pair(t *testing.T) (*graph.Graph, *graph.Graph) {
	t.Helper()
	b1 := graph.NewBuilder(5)
	b1.AddEdge(0, 1, 2)
	b1.AddEdge(1, 2, 3)
	b2 := graph.NewBuilder(5)
	b2.AddEdge(0, 1, 2)   // unchanged
	b2.AddEdge(1, 2, 1)   // −2
	b2.AddEdge(3, 4, 1.5) // +1.5
	return b1.MustBuild(), b2.MustBuild()
}

func TestEditDistance(t *testing.T) {
	a, b := pair(t)
	dist := func(x, y *graph.Graph) float64 {
		t.Helper()
		d, err := EditDistance(x, y)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if got := dist(a, b); got != 3.5 {
		t.Fatalf("EditDistance = %g, want 3.5", got)
	}
	if got := dist(a, a); got != 0 {
		t.Fatalf("self distance = %g", got)
	}
	if got, want := dist(a, b), dist(b, a); got != want {
		t.Fatalf("asymmetric: %g vs %g", got, want)
	}
	if _, err := EditDistance(a, graph.NewBuilder(2).MustBuild()); !errors.Is(err, graph.ErrVertexMismatch) {
		t.Fatalf("err = %v, want ErrVertexMismatch", err)
	}
}

func TestSpectralDistanceBasics(t *testing.T) {
	a, b := pair(t)
	d, err := SpectralDistance(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("distance = %g, want > 0 for different graphs", d)
	}
	self, err := SpectralDistance(a, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Fatalf("self distance = %g", self)
	}
	if _, err := SpectralDistance(a, graph.NewBuilder(3).MustBuild(), 2); err == nil {
		t.Fatal("want vertex-set mismatch error")
	}
}

func TestSpectralDistanceLargeUsesLanczos(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(extra bool) *graph.Graph {
		b := graph.NewBuilder(120)
		for i := 1; i < 120; i++ {
			b.AddEdge(i-1, i, 1)
		}
		for k := 0; k < 200; k++ {
			i, j := rng.Intn(120), rng.Intn(120)
			if i != j {
				b.SetEdge(i, j, 1)
			}
		}
		if extra {
			b.SetEdge(0, 60, 50) // a heavy edge shifts the top eigenvalue
		}
		return b.MustBuild()
	}
	// Note: both graphs must come from the same stream position to
	// share structure; regenerate deterministically instead.
	rng = rand.New(rand.NewSource(2))
	g1 := mk(false)
	rng = rand.New(rand.NewSource(2))
	g2 := mk(true)
	d, err := SpectralDistance(g1, g2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d < 10 {
		t.Fatalf("heavy edge should shift the spectrum strongly, got %g", d)
	}
}

func TestDetectSeriesFlagsEventOnly(t *testing.T) {
	// Stable sequence with one big rewiring: only that transition's
	// residual should cross the threshold.
	mk := func(w float64) *graph.Graph {
		b := graph.NewBuilder(10)
		for i := 1; i < 10; i++ {
			b.AddEdge(i-1, i, 2)
		}
		b.SetEdge(0, 5, w)
		return b.MustBuild()
	}
	graphs := []*graph.Graph{
		mk(0.1), mk(0.12), mk(0.11), mk(0.1), mk(9), mk(0.1), mk(0.11),
	}
	seq := graph.MustSequence(graphs)
	res, err := DetectSeries(seq, Edit, SeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged[3] { // transition into the spike
		t.Fatalf("event transition not flagged: %+v", res.Flagged)
	}
	for tt, f := range res.Flagged {
		if f && tt != 3 && tt != 4 {
			t.Fatalf("calm transition %d flagged", tt)
		}
	}
}

func TestDetectSeriesConstant(t *testing.T) {
	g := graph.NewBuilder(4)
	g.AddEdge(0, 1, 1)
	gg := g.MustBuild()
	seq := graph.MustSequence([]*graph.Graph{gg, gg, gg})
	res, err := DetectSeries(seq, Edit, SeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Flagged {
		if f {
			t.Fatal("constant series flagged a transition")
		}
	}
}

func TestDetectSeriesShortSequence(t *testing.T) {
	g := graph.NewBuilder(2).MustBuild()
	if _, err := DetectSeries(graph.MustSequence([]*graph.Graph{g}), Edit, SeriesConfig{}); err == nil {
		t.Fatal("want error")
	}
}

// The package's reason for existing, executably: on the toy example the
// series detector can flag the transition, but — unlike CAD — its
// output contains nothing that ranks (b1,r1) above the benign (b2,b7).
func TestSeriesDetectsButCannotLocalize(t *testing.T) {
	toy := datagen.Toy()
	g0, g1 := toy.At(0), toy.At(1)
	seq := graph.MustSequence([]*graph.Graph{g0, g0, g0, g1, g0, g0})
	res, err := DetectSeries(seq, Edit, SeriesConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged[2] {
		t.Fatalf("the toy transition should be flagged: %+v", res.Flagged)
	}
	// The result type has distances and flags only — assert the
	// absence of localization structurally (this is a compile-time
	// property, restated here for the record) and contrast with CAD.
	trs, err := core.New(core.Config{}).Run(graph.MustSequence([]*graph.Graph{g0, g1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(trs[0].Scores) == 0 {
		t.Fatal("CAD produced no edge attribution")
	}
	top := trs[0].Scores[0]
	if k := graph.MakeKey(datagen.B1, datagen.R1); top.I != k.I || top.J != k.J {
		t.Fatalf("CAD top edge = (%d,%d), want (b1,r1)", top.I, top.J)
	}
}

func TestSpectralDistanceSymmetricAndNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 6 + rng.Intn(20)
		mk := func() *graph.Graph {
			b := graph.NewBuilder(n)
			for k := 0; k < 3*n; k++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i != j {
					b.SetEdge(i, j, rng.Float64()*3)
				}
			}
			return b.MustBuild()
		}
		a, b := mk(), mk()
		dab, err1 := SpectralDistance(a, b, 4)
		dba, err2 := SpectralDistance(b, a, 4)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if dab < 0 || math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("not a symmetric non-negative distance: %g vs %g", dab, dba)
		}
	}
}
