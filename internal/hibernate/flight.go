package hibernate

import "sync"

// Flight deduplicates concurrent rehydrations: when several requests
// hit a hibernated stream at once, exactly one runs the replay and the
// rest block on its result. A minimal singleflight built on the
// stdlib only — no suppression of later calls, so a failed rehydrate
// is retried by the next request rather than cached as an error.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

type call struct {
	wg  sync.WaitGroup
	val any
	err error
}

// Do executes fn for key, coalescing with any in-flight call for the
// same key. shared reports whether the result came from another
// caller's execution.
func (f *Flight) Do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*call)
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(call)
	c.wg.Add(1)
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
