package hibernate

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func at(sec int) time.Time {
	return time.Unix(int64(sec), 0)
}

func TestLRUColdestPrefersProbation(t *testing.T) {
	l := NewLRU()
	l.Touch("a", at(1))
	l.Touch("a", at(2)) // promoted to protected
	l.Touch("b", at(3)) // probation
	l.Touch("c", at(4)) // probation

	if id, ok := l.Coldest(); !ok || id != "b" {
		t.Fatalf("Coldest = %q, %v; want b (probation tail)", id, ok)
	}
	l.Remove("b")
	l.Remove("c")
	// Only the protected entry remains; Coldest must fall back to it.
	if id, ok := l.Coldest(); !ok || id != "a" {
		t.Fatalf("Coldest after draining probation = %q, %v; want a", id, ok)
	}
	l.Remove("a")
	if _, ok := l.Coldest(); ok || l.Len() != 0 {
		t.Fatal("empty tracker should have no victim")
	}
}

func TestLRUPromotionOrdering(t *testing.T) {
	l := NewLRU()
	for i := 0; i < 4; i++ {
		l.Touch(fmt.Sprintf("s%d", i), at(i))
	}
	// Re-touch s0: it becomes the hottest despite the oldest first touch.
	l.Touch("s0", at(10))
	if id, _ := l.Coldest(); id != "s1" {
		t.Fatalf("Coldest = %q, want s1", id)
	}
	if !l.Contains("s0") || l.Len() != 4 {
		t.Fatal("promotion must not drop entries")
	}
}

func TestLRUIdleBefore(t *testing.T) {
	l := NewLRU()
	l.Touch("old1", at(1))
	l.Touch("old2", at(2))
	l.Touch("hot", at(100))
	l.Touch("hot", at(101)) // protected, recent

	got := l.IdleBefore(at(50), 0)
	if len(got) != 2 || got[0] != "old1" || got[1] != "old2" {
		t.Fatalf("IdleBefore = %v, want [old1 old2] coldest first", got)
	}
	if got := l.IdleBefore(at(50), 1); len(got) != 1 || got[0] != "old1" {
		t.Fatalf("IdleBefore max=1 = %v, want [old1]", got)
	}
	if got := l.IdleBefore(at(0), 0); len(got) != 0 {
		t.Fatalf("nothing idle before epoch, got %v", got)
	}
	// Protected-but-stale entries are returned too.
	l.Touch("stale", at(3))
	l.Touch("stale", at(4))
	got = l.IdleBefore(at(50), 0)
	if len(got) != 3 || got[2] != "stale" {
		t.Fatalf("IdleBefore = %v, want stale after probation entries", got)
	}
}

func TestLRUProtectedCapDemotes(t *testing.T) {
	l := NewLRU()
	// Promote everything: the protected cap must demote overflow back
	// to probation instead of losing entries.
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("s%d", i)
		l.Touch(id, at(i))
		l.Touch(id, at(i+100))
	}
	if l.Len() != 10 {
		t.Fatalf("Len = %d, want 10", l.Len())
	}
	if l.protected.Len() > 8 {
		t.Fatalf("protected segment %d exceeds the 80%% cap", l.protected.Len())
	}
	if l.probation.Len()+l.protected.Len() != 10 {
		t.Fatal("segments out of sync with entry map")
	}
}

func TestLRULastTouch(t *testing.T) {
	l := NewLRU()
	l.Touch("a", at(7))
	if got, ok := l.LastTouch("a"); !ok || !got.Equal(at(7)) {
		t.Fatalf("LastTouch = %v, %v", got, ok)
	}
	if _, ok := l.LastTouch("missing"); ok {
		t.Fatal("LastTouch on unknown id should report !ok")
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("s%d", (w*7+i)%16)
				l.Touch(id, at(i))
				if i%3 == 0 {
					l.Coldest()
					l.IdleBefore(at(i), 4)
				}
				if i%5 == 0 {
					l.Remove(id)
				}
			}
		}(w)
	}
	wg.Wait()
	if l.probation.Len()+l.protected.Len() != l.Len() {
		t.Fatal("segments out of sync after concurrent churn")
	}
}

func TestFlightCoalesces(t *testing.T) {
	var f Flight
	var executions, shares, entered atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const callers = 8
	results := make(chan string, callers)
	for i := 0; i < callers; i++ {
		go func() {
			entered.Add(1)
			v, err, shared := f.Do("stream-1", func() (any, error) {
				close(started)
				executions.Add(1)
				<-release
				return "state", nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				shares.Add(1)
			}
			results <- v.(string)
		}()
		if i == 0 {
			<-started // the first flight is in fn before the rest spawn
		}
	}
	// Release only after every caller is at (or past) its Do call plus a
	// settle, so all of them join the one in-flight execution.
	for entered.Load() < callers {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	for i := 0; i < callers; i++ {
		if v := <-results; v != "state" {
			t.Fatalf("caller got %q", v)
		}
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if s := shares.Load(); s != callers-1 {
		t.Fatalf("shared count = %d, want %d", s, callers-1)
	}
}

func TestFlightErrorsNotCached(t *testing.T) {
	var f Flight
	_, err, _ := f.Do("k", func() (any, error) { return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("want error")
	}
	v, err, _ := f.Do("k", func() (any, error) { return 42, nil })
	if err != nil || v.(int) != 42 {
		t.Fatalf("second call should retry fresh: %v %v", v, err)
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	block := make(chan struct{})
	done := make(chan struct{})
	go f.Do("slow", func() (any, error) { <-block; return nil, nil })
	go func() {
		f.Do("fast", func() (any, error) { return nil, nil })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("distinct key blocked behind another flight")
	}
	close(block)
}
