// Package hibernate holds the working-set policy behind multi-tenant
// memory governance: a segmented-LRU tracker that decides which
// resident streams are cold enough to hibernate, and a singleflight
// group so concurrent requests to a hibernated stream share one
// rehydration.
//
// The package is pure policy — it never touches stream state. The
// serving layer (internal/service) records accesses with Touch,
// removes entries when streams hibernate or die, and asks Coldest /
// IdleBefore for eviction victims when the byte budget
// (internal/budget) says the working set must shrink.
package hibernate

import (
	"container/list"
	"sync"
	"time"
)

// LRU is a segmented least-recently-used tracker over stream ids.
//
// Entries enter a probationary segment on first touch and are promoted
// to the protected segment on re-touch, the classic SLRU scheme: a
// stream that was pushed exactly once (created, probed, abandoned)
// never displaces the steadily-active working set, because eviction
// drains probation first. The protected segment is capped at
// protectedShare of the tracked population; overflow demotes its own
// coldest entry back to probation rather than dropping it.
//
// All methods are safe for concurrent use.
type LRU struct {
	mu        sync.Mutex
	probation *list.List // front = hottest
	protected *list.List // front = hottest
	entries   map[string]*lruEntry
}

// protectedShare caps the protected segment at ~4/5 of all tracked
// entries, keeping a real probationary runway even when everything is
// being re-touched.
const protectedShare = 0.8

type lruEntry struct {
	id        string
	el        *list.Element
	protected bool
	touched   time.Time
}

// NewLRU returns an empty tracker.
func NewLRU() *LRU {
	return &LRU{
		probation: list.New(),
		protected: list.New(),
		entries:   make(map[string]*lruEntry),
	}
}

// Touch records an access to id at time now: new ids enter probation,
// probationary ids are promoted to protected, protected ids move to
// the segment front.
func (l *LRU) Touch(id string, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		e = &lruEntry{id: id, touched: now}
		e.el = l.probation.PushFront(e)
		l.entries[id] = e
		return
	}
	e.touched = now
	if e.protected {
		l.protected.MoveToFront(e.el)
		return
	}
	// Second touch: promote out of probation.
	l.probation.Remove(e.el)
	e.protected = true
	e.el = l.protected.PushFront(e)
	// Keep the protected segment from swallowing the whole population:
	// demote its coldest entry back to probation past the cap.
	if cap := int(protectedShare * float64(len(l.entries))); l.protected.Len() > cap && cap > 0 {
		back := l.protected.Back()
		d := back.Value.(*lruEntry)
		l.protected.Remove(back)
		d.protected = false
		d.el = l.probation.PushFront(d)
	}
}

// Remove forgets id (stream hibernated or deleted).
func (l *LRU) Remove(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return
	}
	if e.protected {
		l.protected.Remove(e.el)
	} else {
		l.probation.Remove(e.el)
	}
	delete(l.entries, id)
}

// Len returns the tracked entry count.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Contains reports whether id is tracked.
func (l *LRU) Contains(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[id]
	return ok
}

// Coldest returns the best eviction victim — the back of probation,
// falling back to the back of protected — without removing it. ok is
// false when the tracker is empty.
func (l *LRU) Coldest() (id string, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if back := l.probation.Back(); back != nil {
		return back.Value.(*lruEntry).id, true
	}
	if back := l.protected.Back(); back != nil {
		return back.Value.(*lruEntry).id, true
	}
	return "", false
}

// IdleBefore returns up to max ids whose last touch is strictly before
// cutoff, coldest first (probation tail before protected tail). A
// non-positive max means no limit.
func (l *LRU) IdleBefore(cutoff time.Time, max int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []string
	// Full scan rather than an early break on the first warm entry:
	// list position tracks operation recency, but promotions can put an
	// old-timestamped entry ahead of a newer one, so position alone
	// can't prove the rest of a segment is warm. The governor calls
	// this on an interval; O(n) is fine.
	for _, seg := range []*list.List{l.probation, l.protected} {
		for el := seg.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*lruEntry)
			if !e.touched.Before(cutoff) {
				continue
			}
			out = append(out, e.id)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// LastTouch returns id's most recent access time; ok is false for
// untracked ids.
func (l *LRU) LastTouch(id string) (t time.Time, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[id]
	if !ok {
		return time.Time{}, false
	}
	return e.touched, true
}
