// Package tracecheck validates Chrome trace_event JSON documents — the
// format cadrun/cadbench -trace-out, cadd's /debug/traces?format=chrome
// and the router's stitched cross-node export all emit. It is the
// library behind cmd/tracecheck, shared so tests (the obs-smoke cluster
// test in particular) can assert a trace is loadable without shelling
// out to the binary.
package tracecheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// Result summarizes a validated document.
type Result struct {
	// Spans is the number of complete ("X") events; Meta the number of
	// metadata ("M") events.
	Spans int
	Meta  int
	// Pids is the number of distinct process ids across span events —
	// a stitched cross-node trace has one per node.
	Pids int
}

// traceDoc mirrors the subset of the Chrome trace_event JSON object
// format the validator cares about.
type traceDoc struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		Ts    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		Pid   *int    `json:"pid"`
		Tid   *int    `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// Check validates one Chrome trace_event document: well-formed JSON, a
// non-empty traceEvents array, complete events with names, non-negative
// timestamps and pid/tid, and no phases other than X and M.
func Check(r io.Reader) (Result, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return Result{}, err
	}
	return CheckBytes(raw)
}

// CheckBytes is Check over an in-memory document.
func CheckBytes(raw []byte) (Result, error) {
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return Result{}, fmt.Errorf("not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return Result{}, fmt.Errorf("traceEvents is empty")
	}
	var res Result
	pids := map[int]bool{}
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name == "" {
				return Result{}, fmt.Errorf("event %d: complete event without a name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				return Result{}, fmt.Errorf("event %d (%s): negative timestamp or duration", i, ev.Name)
			}
			if ev.Pid == nil || ev.Tid == nil {
				return Result{}, fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
			}
			pids[*ev.Pid] = true
			res.Spans++
		case "M":
			res.Meta++
		default:
			return Result{}, fmt.Errorf("event %d: unexpected phase %q", i, ev.Phase)
		}
	}
	if res.Spans == 0 {
		return Result{}, fmt.Errorf("no complete (ph=X) span events")
	}
	res.Pids = len(pids)
	return res, nil
}
