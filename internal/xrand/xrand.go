// Package xrand provides deterministic, seedable random-number helpers
// used throughout the repository. Every experiment in the paper
// reproduction is driven by an explicit seed so that tables and figures
// regenerate identically across runs.
//
// The package wraps math/rand (the v1 generator, which is part of the
// standard library and fully deterministic for a fixed seed) with the
// distributions the data generators need: Gaussians, bounded uniforms,
// permutations, and stream splitting.
package xrand

import (
	"math"
	"math/rand"
)

// Source is a deterministic random stream. It is a thin wrapper around
// *rand.Rand that adds the sampling helpers the simulators require.
// A Source is not safe for concurrent use; derive per-goroutine streams
// with Split.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed. Equal seeds yield identical
// streams on every platform and Go release covered by the math/rand
// compatibility promise.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The child's seed is drawn
// from the parent, so a parent seeded identically always produces the
// same family of children regardless of how many values were consumed
// from each child.
func (s *Source) Split() *Source {
	return New(s.rng.Int63())
}

// Float64 returns a uniform sample in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0,
// matching math/rand.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Normal returns a sample from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Normal2D fills a length-2 point from an axis-aligned 2-D Gaussian.
func (s *Source) Normal2D(meanX, meanY, stddev float64) (x, y float64) {
	return s.Normal(meanX, stddev), s.Normal(meanY, stddev)
}

// Poisson returns a sample from a Poisson distribution with the given
// mean. It uses Knuth's multiplication method for small means and a
// Gaussian approximation (rounded, clamped at zero) for large means,
// which is ample for the traffic simulators in this repository.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Rademacher returns +1 or -1 with equal probability. It is the
// projection coefficient used by the commute-time embedding.
func (s *Source) Rademacher() float64 {
	if s.rng.Int63()&1 == 0 {
		return 1
	}
	return -1
}

// Shuffle pseudo-randomly permutes the first n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Exponential returns a sample from an exponential distribution with
// the given rate (mean 1/rate). It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("xrand: Exponential requires rate > 0")
	}
	return s.rng.ExpFloat64() / rate
}
