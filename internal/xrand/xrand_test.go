package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children of identically seeded parents are identical, regardless
	// of consumption order.
	p1, p2 := New(7), New(7)
	c1 := p1.Split()
	c2 := p2.Split()
	_ = c1.Float64() // consuming from a child must not affect siblings
	d1 := p1.Split()
	d2 := p2.Split()
	if c1.Intn(1000) != c2.Intn(1000)+0 && false {
		t.Fatal("unreachable")
	}
	if d1.Int63() != d2.Int63() {
		t.Fatal("second children diverged")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %g", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("variance = %g", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(5)
	for _, mean := range []float64{0.5, 3, 12, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%g) sample mean = %g", mean, got)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := New(1)
	if r.Poisson(0) != 0 || r.Poisson(-2) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
}

func TestRademacherBalance(t *testing.T) {
	r := New(9)
	var sum float64
	for i := 0; i < 100000; i++ {
		v := r.Rademacher()
		if v != 1 && v != -1 {
			t.Fatalf("Rademacher = %g", v)
		}
		sum += v
	}
	if math.Abs(sum) > 1500 { // ~4.7σ
		t.Fatalf("Rademacher biased: sum = %g", sum)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(2).Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestExponential(t *testing.T) {
	r := New(4)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(2)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exponential(2) mean = %g, want 0.5", mean)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for rate <= 0")
		}
	}()
	r.Exponential(0)
}
