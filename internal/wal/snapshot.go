package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// snapshotMagic identifies (and versions) the snapshot file format.
var snapshotMagic = [8]byte{'C', 'A', 'D', 'S', 'N', 'A', 'P', '1'}

// ErrNoSnapshot is returned by ReadSnapshotFile when no snapshot file
// exists — a valid state for a stream that has not yet compacted.
var ErrNoSnapshot = errors.New("wal: no snapshot")

// WriteSnapshotFile atomically replaces path with a checksummed
// snapshot of payload: the blob is written to a temporary file in the
// same directory, fsynced, renamed over path, and the directory is
// fsynced so the rename itself is durable. Readers therefore always
// see either the previous complete snapshot or the new complete one,
// never a partial write.
func WriteSnapshotFile(path string, payload []byte) error {
	buf := make([]byte, len(snapshotMagic)+8+len(payload))
	copy(buf, snapshotMagic[:])
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:16], crc32.Checksum(payload, castagnoli))
	copy(buf[16:], payload)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("wal: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("wal: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: rotate snapshot: %w", err)
	}
	return syncDir(dir)
}

// ReadSnapshotFile reads and validates the snapshot at path, returning
// its payload. ErrNoSnapshot when the file does not exist; any framing
// or checksum violation is an error (a snapshot is written atomically,
// so unlike a WAL tail there is no benign way for it to be short).
func ReadSnapshotFile(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoSnapshot
		}
		return nil, fmt.Errorf("wal: read snapshot %s: %w", path, err)
	}
	if len(buf) < len(snapshotMagic)+8 || [8]byte(buf[:8]) != snapshotMagic {
		return nil, fmt.Errorf("wal: snapshot %s: bad magic or short header", path)
	}
	length := binary.LittleEndian.Uint32(buf[8:12])
	sum := binary.LittleEndian.Uint32(buf[12:16])
	payload := buf[16:]
	if int(length) != len(payload) {
		return nil, fmt.Errorf("wal: snapshot %s: declared %d payload bytes, have %d", path, length, len(payload))
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, fmt.Errorf("wal: snapshot %s: checksum mismatch", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss. Some filesystems reject directory fsync; that is not worth
// failing a snapshot over, so only real sync errors propagate.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
