package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestEncodeFrameMatchesAppend pins the frame-export invariant behind
// WAL shipping: EncodeFrame produces exactly the bytes Append puts on
// disk, so a follower applying shipped frames ends up with a log file
// byte-identical to the primary's.
func TestEncodeFrameMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	payloads := [][]byte{[]byte("one"), []byte("two-longer-payload"), {0, 1, 2, 0xff}}

	appendPath := filepath.Join(dir, "append.log")
	l1, _, err := Open(appendPath, Options{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	framePath := filepath.Join(dir, "frame.log")
	l2, _, err := Open(framePath, Options{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var shipped bytes.Buffer
	for _, p := range payloads {
		if err := l1.Append(p); err != nil {
			t.Fatal(err)
		}
		frame, err := EncodeFrame(p)
		if err != nil {
			t.Fatal(err)
		}
		shipped.Write(frame)
		if err := l2.AppendFrame(frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := os.ReadFile(appendPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(framePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("AppendFrame log differs from Append log (%d vs %d bytes)", len(b), len(a))
	}
	if !bytes.Equal(a, shipped.Bytes()) {
		t.Fatalf("on-disk log differs from the concatenated encoded frames")
	}
	if n, err := VerifyFrames(a); err != nil || n != len(payloads) {
		t.Fatalf("VerifyFrames = %d, %v; want %d, nil", n, err, len(payloads))
	}
}

func TestVerifyFrameRejectsCorruption(t *testing.T) {
	frame, err := EncodeFrame([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if payload, err := VerifyFrame(frame); err != nil || string(payload) != "hello" {
		t.Fatalf("VerifyFrame(valid) = %q, %v", payload, err)
	}

	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := VerifyFrame(flipped); err == nil {
		t.Fatal("VerifyFrame accepted a corrupt payload")
	}
	if _, err := VerifyFrame(frame[:len(frame)-1]); err == nil {
		t.Fatal("VerifyFrame accepted a truncated frame")
	}
	extended := append(append([]byte(nil), frame...), 0x00)
	if _, err := VerifyFrame(extended); err == nil {
		t.Fatal("VerifyFrame accepted trailing bytes")
	}
	if _, err := VerifyFrame(nil); err == nil {
		t.Fatal("VerifyFrame accepted an empty frame")
	}

	two := append(append([]byte(nil), frame...), frame...)
	if n, err := VerifyFrames(two); err != nil || n != 2 {
		t.Fatalf("VerifyFrames(two frames) = %d, %v", n, err)
	}
	if _, err := VerifyFrames(two[:len(two)-2]); err == nil {
		t.Fatal("VerifyFrames accepted a torn tail")
	}
}
