package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"math"
)

// The typed journal payloads. Each record is a self-contained gob blob
// (its own type preamble), so any valid WAL prefix decodes without
// state from earlier frames — the property torn-tail truncation relies
// on. Gob was chosen over a hand-rolled binary format deliberately:
// the fields are few, the framing layer already owns integrity, and
// gob's self-description keeps old logs readable when fields are
// added.

// Edge is one weighted undirected edge of a journaled graph.
type Edge struct {
	I, J int32
	W    float64
}

// Score is one scored node pair of a journaled transition.
type Score struct {
	I, J int32
	S    float64
}

// GraphData is the journaled form of one graph instance.
type GraphData struct {
	N      int32
	Edges  []Edge
	Labels []string
}

// TransitionData is the journaled form of one scored transition:
// transition T is the move from instance T to T+1, with scores sorted
// descending exactly as the detector produced them.
type TransitionData struct {
	T      int64
	Scores []Score
	Total  float64
}

// PushRecord journals one accepted push: the graph that arrived, the
// transition it produced (absent for the stream's first instance), and
// the detector-visible state after applying it. Digest chains every
// record to its predecessor (see StateDigest), so replay detects
// missing or reordered records, not just flipped bits.
type PushRecord struct {
	// Instance is the 0-based index of this graph in the stream.
	Instance int64
	Graph    GraphData
	// Scores and Total are the newest transition's output (transition
	// Instance-1); Scores is nil for Instance 0.
	Scores []Score
	Total  float64
	// Delta and Evicted are the detector's threshold and eviction
	// count after this push.
	Delta   float64
	Evicted int64
	// NewVertexIDs lists the external IDs this push interned, in
	// dense-index order starting at the stream's pre-push vertex count.
	// Nil for raw index streams and for pushes that added no vertices;
	// replay appends them to the accumulated ID table. (A gob-added
	// field: old logs decode with it nil.)
	NewVertexIDs []string
	// Digest is the state-digest chain value after this record.
	Digest uint64
}

// StreamSnapshot is the compact snapshot that makes the log finite: the
// full recoverable state of one stream at an instant. Config is the
// owner's opaque stream configuration (the serving layer stores its
// StreamConfig JSON, which carries the embedding's projection seed so
// warm rebuilds stay bit-identical across a restart).
type StreamSnapshot struct {
	Config []byte
	// N is the stream's current vertex count (non-decreasing over the
	// stream's life); Instances the number of graphs consumed (so the
	// next expected instance index equals Instances); Evicted the
	// history-window eviction count.
	N         int32
	Instances int64
	Evicted   int64
	// Delta is the threshold at the snapshot instant.
	Delta float64
	// History is the retained scored-transition window.
	History []TransitionData
	// Prev is the most recent graph — the one the next arriving
	// instance is scored against. Nil only when Instances is 0.
	Prev *GraphData
	// VertexIDs is the external-ID table in dense-index order (nil for
	// raw index streams; len == N when set). A gob-added field: old
	// logs decode with it nil.
	VertexIDs []string
	// Digest is the state-digest chain value at the snapshot instant;
	// WAL records appended after the snapshot chain from it.
	Digest uint64
}

// EncodeRecord serializes a push record.
func EncodeRecord(r *PushRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRecord deserializes a push record.
func DecodeRecord(payload []byte) (*PushRecord, error) {
	var r PushRecord
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
		return nil, fmt.Errorf("wal: decode record: %w", err)
	}
	return &r, nil
}

// EncodeSnapshot serializes a stream snapshot.
func EncodeSnapshot(s *StreamSnapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("wal: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a stream snapshot.
func DecodeSnapshot(payload []byte) (*StreamSnapshot, error) {
	var s StreamSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("wal: decode snapshot: %w", err)
	}
	return &s, nil
}

// StateDigest chains a fingerprint of the detector-visible state after
// one push: FNV-64a over the previous chain value, the instance index,
// the post-push threshold bits, the eviction count and the newest
// transition's total-score bits. δ is an exact function of the whole
// retained score history, so two runs that agree on every chained
// digest agree on every journaled report — this is what recovery
// verifies the replayed state against.
func StateDigest(prev uint64, instance int64, delta float64, evicted int64, total float64) uint64 {
	var b [40]byte
	binary.LittleEndian.PutUint64(b[0:8], prev)
	binary.LittleEndian.PutUint64(b[8:16], uint64(instance))
	binary.LittleEndian.PutUint64(b[16:24], math.Float64bits(delta))
	binary.LittleEndian.PutUint64(b[24:32], uint64(evicted))
	binary.LittleEndian.PutUint64(b[32:40], math.Float64bits(total))
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}
