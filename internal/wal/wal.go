// Package wal is the durability substrate of the serving layer: a
// length-prefixed, CRC-checksummed append-only log of accepted pushes
// plus atomically-rotated compact snapshots, built from the standard
// library only.
//
// The design is the classic log-structured recovery pair:
//
//   - A write-ahead log (Log) holds one framed record per accepted
//     push. Each frame is [uint32 length][uint32 CRC32-C][payload];
//     recovery replays the longest valid prefix and truncates anything
//     after the first torn or corrupt frame (a crash mid-append leaves
//     at most one partial frame at the tail, never a silently corrupt
//     middle — appends are sequential and the CRC rejects bit rot).
//
//   - A snapshot file compacts the log: once the owner has journaled
//     enough records it writes the full recoverable state as one blob
//     (WriteSnapshotFile: temp file in the same directory, fsync,
//     rename, directory fsync) and resets the log. A crash between the
//     rename and the reset is benign — recovery skips log records the
//     snapshot already covers.
//
// The package stores opaque payloads; record.go provides the typed
// push-record and stream-snapshot encodings the cadd serving layer
// journals, so the file formats live next to the framing that protects
// them. docs/DURABILITY.md specifies both formats.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// frameHeaderSize is the per-record framing overhead: a little-endian
// uint32 payload length followed by the payload's CRC32-C.
const frameHeaderSize = 8

// maxFrameSize bounds a single record (64 MiB, matching the serving
// layer's snapshot POST bound) so a corrupt length field cannot demand
// an absurd allocation during recovery.
const maxFrameSize = 64 << 20

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), the same checksum used by iSCSI, ext4 and Kafka.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Fsync syncs the file after every Append. Off, the OS flushes
	// dirty pages on its own schedule: a process crash loses nothing
	// (the page cache survives), a machine crash can lose the most
	// recent appends — which recovery then truncates cleanly.
	Fsync bool
}

// Recovery describes what Open found.
type Recovery struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes is the size of the torn or corrupt tail that was
	// cut off (0 for a clean log).
	TruncatedBytes int64
}

// Log is an append-only record log. It is not safe for concurrent use;
// the serving layer confines each stream's log to its worker goroutine.
type Log struct {
	f     *os.File
	path  string
	fsync bool
	size  int64
}

// Open opens (creating if absent) the log at path, replays every valid
// record through fn in append order, truncates any torn or corrupt
// tail, and returns the log positioned for appends. The payload slice
// passed to fn is only valid during the call. A non-nil error from fn
// aborts the replay and closes the file.
func Open(path string, opts Options, fn func(payload []byte) error) (*Log, Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, fsync: opts.Fsync}
	rec, err := l.replayAndRepair(fn)
	if err != nil {
		f.Close()
		return nil, rec, err
	}
	return l, rec, nil
}

// replayAndRepair scans frames from the start, calling fn for each
// valid payload, then truncates the file to the end of the valid
// prefix. Any framing violation — short header, absurd length, short
// payload, CRC mismatch — ends the valid prefix; everything after it
// is discarded, which is the contract that makes crash-interrupted
// appends recoverable.
func (l *Log) replayAndRepair(fn func(payload []byte) error) (Recovery, error) {
	info, err := l.f.Stat()
	if err != nil {
		return Recovery{}, fmt.Errorf("wal: stat %s: %w", l.path, err)
	}
	fileSize := info.Size()

	var (
		rec    Recovery
		offset int64
		header [frameHeaderSize]byte
		buf    []byte
	)
	for {
		if _, err := io.ReadFull(l.f, header[:]); err != nil {
			break // clean EOF or torn header: valid prefix ends here
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxFrameSize || offset+frameHeaderSize+int64(length) > fileSize {
			break // corrupt length or frame running past EOF
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(l.f, buf); err != nil {
			break // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != sum {
			break // corrupt payload
		}
		if err := fn(buf); err != nil {
			return rec, fmt.Errorf("wal: replay %s record %d: %w", l.path, rec.Records, err)
		}
		rec.Records++
		offset += frameHeaderSize + int64(length)
	}

	if offset < fileSize {
		rec.TruncatedBytes = fileSize - offset
		if err := l.f.Truncate(offset); err != nil {
			return rec, fmt.Errorf("wal: truncate torn tail of %s: %w", l.path, err)
		}
		if err := l.f.Sync(); err != nil {
			return rec, fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(offset, io.SeekStart); err != nil {
		return rec, fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = offset
	return rec, nil
}

// EncodeFrame wraps a payload in the log's frame format —
// [uint32 length][uint32 CRC32-C][payload] — without writing it
// anywhere. The frame bytes are exactly what Append would put on disk,
// which is what makes WAL shipping byte-identical: a primary encodes
// once, appends the frame locally and streams the same bytes to its
// follower.
func EncodeFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, errors.New("wal: empty record")
	}
	if len(payload) > maxFrameSize {
		return nil, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(payload), maxFrameSize)
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	return frame, nil
}

// VerifyFrame checks that frame is exactly one well-formed record frame
// and returns its payload (aliasing frame's memory). A replica applies
// shipped frames only after this check, so a corrupt or truncated
// segment is refused before it reaches the follower's log.
func VerifyFrame(frame []byte) ([]byte, error) {
	if len(frame) < frameHeaderSize+1 {
		return nil, fmt.Errorf("wal: frame of %d bytes is shorter than a header plus payload", len(frame))
	}
	length := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if length == 0 || length > maxFrameSize {
		return nil, fmt.Errorf("wal: frame declares an invalid payload length %d", length)
	}
	if int64(len(frame)) != frameHeaderSize+int64(length) {
		return nil, fmt.Errorf("wal: frame of %d bytes does not match its declared payload length %d", len(frame), length)
	}
	payload := frame[frameHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, errors.New("wal: frame checksum mismatch")
	}
	return payload, nil
}

// VerifyFrames checks that data is a sequence of well-formed frames
// with no trailing bytes and returns the record count — the validation
// a replica runs before adopting a whole shipped log file.
func VerifyFrames(data []byte) (int, error) {
	records := 0
	for off := 0; off < len(data); {
		if len(data)-off < frameHeaderSize {
			return records, fmt.Errorf("wal: torn header at offset %d", off)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		if length == 0 || length > maxFrameSize {
			return records, fmt.Errorf("wal: invalid payload length %d at offset %d", length, off)
		}
		end := off + frameHeaderSize + int(length)
		if end > len(data) {
			return records, fmt.Errorf("wal: frame at offset %d runs past the end", off)
		}
		if _, err := VerifyFrame(data[off:end]); err != nil {
			return records, fmt.Errorf("wal: frame at offset %d: %w", off, err)
		}
		records++
		off = end
	}
	return records, nil
}

// Append writes one record frame. With Options.Fsync the record is
// durable when Append returns; otherwise durability waits for the OS
// (or the next Sync call).
func (l *Log) Append(payload []byte) error {
	frame, err := EncodeFrame(payload)
	if err != nil {
		return err
	}
	return l.AppendFrame(frame)
}

// AppendFrame writes one already-encoded frame (from EncodeFrame, or
// shipped over the wire and checked with VerifyFrame). The frame lands
// on disk byte-for-byte, so a follower's log file stays identical to
// its primary's.
func (l *Log) AppendFrame(frame []byte) error {
	if _, err := VerifyFrame(frame); err != nil {
		return err
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	l.size += int64(len(frame))
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync %s: %w", l.path, err)
		}
	}
	return nil
}

// Sync forces buffered appends to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Reset discards every record — the log-compaction step after a
// snapshot has captured the state the records rebuilt. The truncation
// is synced so a subsequent crash cannot resurrect pre-snapshot
// records ahead of newer appends.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek %s: %w", l.path, err)
	}
	l.size = 0
	return l.f.Sync()
}

// Size returns the current log size in bytes.
func (l *Log) Size() int64 { return l.size }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync %s: %w", l.path, err)
	}
	return l.f.Close()
}
