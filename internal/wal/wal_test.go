package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// reopen collects every replayed payload from path.
func reopen(t *testing.T, path string, opts Options) (*Log, Recovery, [][]byte) {
	t.Helper()
	var got [][]byte
	l, rec, err := Open(path, opts, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec, got
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, rec, _ := reopen(t, path, Options{Fsync: true})
	if rec.Records != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh log reported recovery %+v", rec)
	}
	want := [][]byte{[]byte("one"), []byte("two-two"), bytes.Repeat([]byte{0xAB}, 10_000)}
	for _, p := range want {
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, got := reopen(t, path, Options{})
	defer l2.Close()
	if rec.Records != len(want) || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery %+v, want %d clean records", rec, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	// Appending after recovery extends, not clobbers.
	if err := l2.Append([]byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	_, rec, got = reopen(t, path, Options{})
	if rec.Records != 4 || string(got[3]) != "post-recovery" {
		t.Fatalf("post-recovery append lost: %+v %q", rec, got)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 3, 7, 9} { // inside header and inside payload of the last frame
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			l, _, _ := reopen(t, path, Options{})
			if err := l.Append([]byte("keep-me")); err != nil {
				t.Fatal(err)
			}
			mark := l.Size()
			if err := l.Append([]byte("torn-record")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Simulate a crash mid-append: cut the last frame short.
			if err := os.Truncate(path, mark+cut); err != nil {
				t.Fatal(err)
			}

			l2, rec, got := reopen(t, path, Options{})
			if rec.Records != 1 || len(got) != 1 || string(got[0]) != "keep-me" {
				t.Fatalf("recovery %+v payloads %q, want just keep-me", rec, got)
			}
			if rec.TruncatedBytes != cut {
				t.Fatalf("TruncatedBytes %d, want %d", rec.TruncatedBytes, cut)
			}
			// The repaired log accepts appends and replays cleanly.
			if err := l2.Append([]byte("after-repair")); err != nil {
				t.Fatal(err)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec, got = reopen(t, path, Options{})
			if rec.Records != 2 || rec.TruncatedBytes != 0 || string(got[1]) != "after-repair" {
				t.Fatalf("repaired log replay %+v %q", rec, got)
			}
		})
	}
}

func TestLogCorruptCRCTruncatesFromCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := reopen(t, path, Options{})
	var marks []int64
	for _, p := range []string{"aaaa", "bbbb", "cccc"} {
		marks = append(marks, l.Size())
		if err := l.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[marks[1]+frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, got := reopen(t, path, Options{})
	if rec.Records != 1 || string(got[0]) != "aaaa" {
		t.Fatalf("corrupt middle: recovered %+v %q, want only the prefix before the corruption", rec, got)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
	if st, _ := os.Stat(path); st.Size() != marks[1] {
		t.Fatalf("file not truncated at corruption: size %d want %d", st.Size(), marks[1])
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _, _ := reopen(t, path, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size %d after reset", l.Size())
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, got := reopen(t, path, Options{})
	if rec.Records != 1 || string(got[0]) != "fresh" {
		t.Fatalf("post-reset replay %+v %q", rec, got)
	}
}

func TestSnapshotAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.bin")
	if _, err := ReadSnapshotFile(path); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("missing snapshot: %v, want ErrNoSnapshot", err)
	}
	payload := bytes.Repeat([]byte("snap"), 1000)
	if err := WriteSnapshotFile(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot payload mismatch")
	}
	// Overwrite is atomic-by-rename; the new content fully replaces.
	if err := WriteSnapshotFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ = ReadSnapshotFile(path); string(got) != "v2" {
		t.Fatalf("rotation left %q", got)
	}
	// No temp litter.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want 1", len(entries))
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.bin")
	if err := WriteSnapshotFile(path, []byte("precious state")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	// Bad magic.
	if err := os.WriteFile(path, []byte("NOTASNAPXXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshotFile(path); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	r := &PushRecord{
		Instance: 7,
		Graph: GraphData{
			N:      5,
			Edges:  []Edge{{I: 0, J: 1, W: 1.5}, {I: 3, J: 4, W: 0.25}},
			Labels: []string{"a", "b", "c", "d", "e"},
		},
		Scores:  []Score{{I: 0, J: 1, S: 3.25}},
		Total:   3.25,
		Delta:   1.125,
		Evicted: 2,
	}
	r.Digest = StateDigest(99, r.Instance, r.Delta, r.Evicted, r.Total)
	buf, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Instance != r.Instance || back.Delta != r.Delta || back.Digest != r.Digest ||
		len(back.Graph.Edges) != 2 || back.Graph.Labels[4] != "e" || back.Scores[0] != r.Scores[0] {
		t.Fatalf("record round trip mismatch: %+v", back)
	}

	s := &StreamSnapshot{
		Config:    []byte(`{"l":5}`),
		N:         5,
		Instances: 8,
		Evicted:   2,
		Delta:     1.125,
		History:   []TransitionData{{T: 6, Scores: []Score{{I: 1, J: 2, S: 9}}, Total: 9}},
		Prev:      &r.Graph,
		Digest:    r.Digest,
	}
	sb, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	sback, err := DecodeSnapshot(sb)
	if err != nil {
		t.Fatal(err)
	}
	if sback.Instances != 8 || sback.Prev == nil || sback.Prev.N != 5 ||
		len(sback.History) != 1 || sback.History[0].Scores[0].S != 9 || sback.Digest != r.Digest {
		t.Fatalf("snapshot round trip mismatch: %+v", sback)
	}
	if _, err := DecodeRecord([]byte("not gob")); err == nil {
		t.Fatal("garbage decoded as record")
	}
}

func TestStateDigestChainsAndDiscriminates(t *testing.T) {
	d1 := StateDigest(0, 1, 0.5, 0, 10)
	if d1 != StateDigest(0, 1, 0.5, 0, 10) {
		t.Fatal("digest not deterministic")
	}
	for _, d := range []uint64{
		StateDigest(1, 1, 0.5, 0, 10), // different chain
		StateDigest(0, 2, 0.5, 0, 10), // different instance
		StateDigest(0, 1, 0.6, 0, 10), // different delta
		StateDigest(0, 1, 0.5, 1, 10), // different eviction
		StateDigest(0, 1, 0.5, 0, 11), // different total
	} {
		if d == d1 {
			t.Fatal("digest collision across distinct states")
		}
	}
}
