package precip

import (
	"math"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Seq.T() != 21 {
		t.Fatalf("T = %d, want 21", d.Seq.T())
	}
	if d.Seq.N() != 24*48 {
		t.Fatalf("N = %d, want %d", d.Seq.N(), 24*48)
	}
	if d.EventTransition != 12 {
		t.Fatalf("event transition = %d, want 12", d.EventTransition)
	}
	// kNN graph: between k/2 and k edges per node after symmetrization
	// and deduplication.
	m := d.Seq.AvgEdges()
	n := float64(d.Seq.N())
	if m < 5*n/2 || m > 10*n {
		t.Fatalf("avg edges = %g for n = %g, outside kNN range", m, n)
	}
}

func TestRegionsPresent(t *testing.T) {
	d := Generate(Config{Seed: 1})
	counts := make(map[Region]int)
	for _, r := range d.Region {
		counts[r]++
	}
	for reg := RegionSouthernAfrica; reg <= RegionAmazon; reg++ {
		if counts[reg] == 0 {
			t.Fatalf("region %v empty", reg)
		}
	}
	if counts[RegionNone] < d.Seq.N()/2 {
		t.Fatalf("background too small: %d", counts[RegionNone])
	}
}

func TestEventShiftsRegions(t *testing.T) {
	d := Generate(Config{Seed: 1})
	means := d.RegionMeans()
	ev := d.Config.EventYear
	check := func(reg Region, sign float64) {
		t.Helper()
		diff := means[reg][ev] - means[reg][ev-1]
		if diff*sign < 1 { // shift is 2, noise ≤ ~0.7
			t.Fatalf("%v shift = %g, want sign %g and magnitude ≳ 1", reg, diff, sign)
		}
	}
	check(RegionSouthernAfrica, 1)
	check(RegionBrazil, 1)
	check(RegionPeru, -1)
	check(RegionAustralia, -1)
	// Reference regions stay on climatology.
	for _, reg := range []Region{RegionEqAfrica, RegionAmazon} {
		diff := math.Abs(means[reg][ev] - means[reg][ev-1])
		if diff > 1 {
			t.Fatalf("reference region %v moved by %g", reg, diff)
		}
	}
}

func TestEventIsTransient(t *testing.T) {
	d := Generate(Config{Seed: 1})
	means := d.RegionMeans()
	ev := d.Config.EventYear
	// The year after the event, southern Africa returns to climatology.
	back := math.Abs(means[RegionSouthernAfrica][ev+1] - means[RegionSouthernAfrica][ev-1])
	if back > 1 {
		t.Fatalf("event did not revert: residual %g", back)
	}
}

func TestEventNodeLabels(t *testing.T) {
	d := Generate(Config{Seed: 1})
	labels := d.EventNodeLabels()
	var nTrue int
	for i, l := range labels {
		if l {
			nTrue++
			switch d.Region[i] {
			case RegionSouthernAfrica, RegionBrazil, RegionPeru, RegionAustralia:
			default:
				t.Fatalf("cell %d labeled true but in region %v", i, d.Region[i])
			}
		}
	}
	if nTrue == 0 || nTrue > d.Seq.N()/2 {
		t.Fatalf("true labels = %d, degenerate", nTrue)
	}
}

func TestSimilarityGraphKNNProperties(t *testing.T) {
	values := []float64{0, 0.1, 0.2, 0.3, 5, 5.1, 5.2}
	g := similarityGraph(values, 2, 0.5)
	// Every node has at least k neighbors after symmetrization.
	for i := 0; i < len(values); i++ {
		idx, _ := g.Neighbors(i)
		if len(idx) < 2 {
			t.Fatalf("node %d has %d neighbors, want ≥ 2", i, len(idx))
		}
	}
	// Close values get high weight, far values low (or no) weight.
	if g.Weight(0, 1) < 0.9 {
		t.Fatalf("w(0,1) = %g, want near 1", g.Weight(0, 1))
	}
	if g.Weight(3, 4) > g.Weight(0, 1) {
		t.Fatal("cross-gap weight should be smaller")
	}
}

func TestSimilarityGraphSymmetrized(t *testing.T) {
	// Node 3 (value 10) is far from the tight cluster; it selects two
	// cluster members, which would not select it — the edge must exist
	// anyway.
	values := []float64{0, 0.01, 0.02, 10}
	g := similarityGraph(values, 2, 5)
	idx, _ := g.Neighbors(3)
	if len(idx) != 2 {
		t.Fatalf("node 3 has %d neighbors, want 2", len(idx))
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Generate(Config{Rows: 8, Cols: 8, Years: 4, Seed: 3})
	b := Generate(Config{Rows: 8, Cols: 8, Years: 4, Seed: 3})
	for y := 0; y < 4; y++ {
		for i := 0; i < a.Seq.N(); i++ {
			if a.Values[y][i] != b.Values[y][i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestRegionOfDisjointPatches(t *testing.T) {
	const rows, cols = 24, 48
	seen := make(map[Region]bool)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			seen[regionOf(r, c, rows, cols)] = true
		}
	}
	for reg := RegionSouthernAfrica; reg <= RegionAmazon; reg++ {
		if !seen[reg] {
			t.Fatalf("region %v missing from layout", reg)
		}
	}
}
