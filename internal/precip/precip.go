// Package precip simulates the world-wide precipitation workload of
// the paper's §4.2.3. The real NCEP/NCAR reanalysis (monthly means,
// 0.5° land grid, 67,420 locations, 1982–2002) cannot ship with the
// repository, so this package generates a surrogate with the same
// signal structure:
//
//   - a lat/lon grid of land cells carrying six named climate regions
//     with distinct climatological precipitation levels plus a smooth
//     background gradient,
//   - spatially correlated year-to-year noise (low-frequency random
//     fields), and
//   - one teleconnection event (default year 13 — the January 1995
//     La Niña analog) that *simultaneously but subtly* shifts
//     precipitation in four disjoint regions: two wetter ("southern
//     Africa", "Brazil"), two drier ("Peru", "Australia"), while two
//     reference regions ("equatorial Africa", "Amazon") stay on
//     climatology.
//
// Each year's graph is the paper's construction: a 10-nearest-neighbor
// graph over the locations with edge weight exp(−(p_i−p_j)²/2σ²).
// Neighbors are nearest in *precipitation value*, which is what lets
// geographically distant but climatically similar places share edges —
// the teleconnection signature of the paper's Figure 9 (southern
// Africa–equatorial Africa, Brazil–Amazon, …). When the event lifts
// southern Africa onto equatorial Africa's precipitation level, brand
// new strong edges appear between those distant regions and CAD's
// |ΔA|·|Δc| score spikes exactly there — while the same shift is
// small relative to ordinary interannual swings in any single cell's
// time series (the paper's Figure 10 point).
package precip

import (
	"math"
	"sort"

	"dyngraph/internal/graph"
	"dyngraph/internal/xrand"
)

// Region identifies one of the scripted geographic regions.
type Region int

// Scripted regions of the teleconnection event.
const (
	RegionNone Region = iota
	RegionSouthernAfrica
	RegionBrazil
	RegionPeru
	RegionAustralia
	RegionEqAfrica // reference: unchanged
	RegionAmazon   // reference: unchanged
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionSouthernAfrica:
		return "southern-africa"
	case RegionBrazil:
		return "brazil"
	case RegionPeru:
		return "peru"
	case RegionAustralia:
		return "australia"
	case RegionEqAfrica:
		return "eq-africa"
	case RegionAmazon:
		return "amazon"
	default:
		return "none"
	}
}

// climatology returns each region's baseline precipitation level. The
// levels are spaced so that the +2 event shift moves southern Africa
// onto equatorial Africa's level and Brazil onto the Amazon's, while
// Peru and Australia drop toward the dry background — the paper's
// wetter/drier teleconnection pattern.
func (r Region) climatology() float64 {
	switch r {
	case RegionSouthernAfrica:
		return 6
	case RegionBrazil:
		return 5
	case RegionPeru:
		return 4
	case RegionAustralia:
		return 3
	case RegionEqAfrica:
		return 8
	case RegionAmazon:
		return 7
	default:
		return 0 // background cells use the latitudinal gradient
	}
}

// Config parameterizes the simulator.
type Config struct {
	// Rows, Cols define the land grid (defaults 24×48 = 1152 cells;
	// the real data has 67,420 — raise for a full-scale run).
	Rows, Cols int
	// Years is the number of January instances (default 21, 1982–2002).
	Years int
	// EventYear is the 0-based year at which the teleconnection occurs
	// (default 13, the analog of January 1995, so the anomalous
	// transition is EventYear−1 → EventYear).
	EventYear int
	// EventShift is the regional precipitation shift in value units
	// (default 2 — two region levels, subtle next to the 0..8 value
	// range but enough to relocate a region in similarity space).
	EventShift float64
	// NoiseStd is the standard deviation of the per-region coherent
	// interannual noise (default 0.25). Background zones vary at a
	// quarter of it (their band spacing is ~0.16, so larger swings
	// would make zones cross each other every year — the real analog
	// is that broad climate belts are far more stable than the
	// monsoon-driven regions the event touches); per-cell noise is a
	// tenth of it.
	NoiseStd float64
	// Neighbors is the kNN degree (default 10 as in the paper).
	Neighbors int
	// Sigma is the similarity kernel bandwidth (default 0.25, sitting
	// between the background-zone spacing ≈0.4 — which therefore stays
	// strongly coupled — and the region-level spacing 1.0, which
	// becomes a near-disconnection; that contrast is what makes a
	// region-level shift structurally loud and ordinary zone drift
	// quiet).
	Sigma float64
	// Seed drives the noise fields.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 24
	}
	if c.Cols <= 0 {
		c.Cols = 48
	}
	if c.Years <= 0 {
		c.Years = 21
	}
	if c.EventYear <= 0 {
		c.EventYear = 13
	}
	if c.EventShift <= 0 {
		c.EventShift = 2
	}
	if c.NoiseStd <= 0 {
		c.NoiseStd = 0.25
	}
	if c.Neighbors <= 0 {
		c.Neighbors = 10
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.25
	}
	return c
}

// Dataset is the generated corpus.
type Dataset struct {
	Config Config
	// Seq contains one similarity graph per year.
	Seq *graph.Sequence
	// Values[t][i] is cell i's precipitation in year t.
	Values [][]float64
	// Region[i] labels each cell.
	Region []Region
	// EventTransition is the transition index that should be flagged
	// (EventYear−1 → EventYear).
	EventTransition int
}

// Generate builds the simulated precipitation sequence.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed)
	rows, cols := cfg.Rows, cfg.Cols
	n := rows * cols

	// Climatology. Background cells cover the whole precipitation
	// range continuously (the globe has land at every precipitation
	// level), which keeps the value-space kNN graph one connected,
	// thick chain — the property the real 67k-cell grid has and the
	// one that makes commute distance meaningful between any two
	// climates. The six named regions sit as dense clumps on that
	// continuum, each spread ±0.3 around its level.
	//
	// Interannual noise is drawn per coherent unit per year — a named
	// region or a latitudinal background zone — plus a small per-cell
	// term. Coherence is the regional structure of real climate
	// variability, and it is what keeps ordinary years benign in
	// similarity space: a unit's cells move together, so each cell's
	// kNN partners (its climate look-alikes) barely change.
	region := make([]Region, n)
	clim := make([]float64, n)
	unit := make([]int, n) // coherent-noise unit id per cell
	zoneRows := rows / 6
	if zoneRows < 1 {
		zoneRows = 1
	}
	numZones := (rows + zoneRows - 1) / zoneRows
	const valueSpan = 8.6 // background continuum 0.2 .. 8.8
	for r := 0; r < rows; r++ {
		zone := r / zoneRows
		for c := 0; c < cols; c++ {
			i := r*cols + c
			region[i] = regionOf(r, c, rows, cols)
			if region[i] != RegionNone {
				clim[i] = region[i].climatology() + rng.Uniform(-0.3, 0.3)
				unit[i] = numZones + int(region[i])
			} else {
				clim[i] = 0.2 + valueSpan*rng.Float64()
				unit[i] = zone
			}
		}
	}
	numUnits := numZones + int(RegionAmazon) + 1

	values := make([][]float64, cfg.Years)
	graphs := make([]*graph.Graph, cfg.Years)
	offsets := make([]float64, numUnits)
	for t := 0; t < cfg.Years; t++ {
		for u := range offsets {
			if u < numZones {
				offsets[u] = rng.Normal(0, cfg.NoiseStd/4)
			} else {
				offsets[u] = rng.Normal(0, cfg.NoiseStd)
			}
		}
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			x := clim[i] + offsets[unit[i]] + rng.Normal(0, 0.1*cfg.NoiseStd)
			if t == cfg.EventYear {
				switch region[i] {
				case RegionSouthernAfrica, RegionBrazil:
					x += cfg.EventShift
				case RegionPeru, RegionAustralia:
					x -= cfg.EventShift
				}
			}
			if x < 0 {
				x = 0
			}
			v[i] = x
		}
		values[t] = v
		graphs[t] = similarityGraph(v, cfg.Neighbors, cfg.Sigma)
	}

	return &Dataset{
		Config:          cfg,
		Seq:             graph.MustSequence(graphs),
		Values:          values,
		Region:          region,
		EventTransition: cfg.EventYear - 1,
	}
}

// similarityGraph builds the year's kNN graph in precipitation-value
// space: each cell connects to the k cells with the closest values,
// weighted exp(−Δ²/2σ²). Value-space kNN on scalars reduces to a
// window scan over the value-sorted order, O(n·k) after the sort; the
// neighbor relation is symmetrized (an edge exists if either endpoint
// selects the other), as in the paper's construction.
func similarityGraph(values []float64, k int, sigma float64) *graph.Graph {
	n := len(values)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if values[order[a]] != values[order[b]] {
			return values[order[a]] < values[order[b]]
		}
		return order[a] < order[b]
	})
	pos := make([]int, n) // cell → rank in sorted order
	for r, i := range order {
		pos[i] = r
	}

	inv := 1 / (2 * sigma * sigma)
	seen := make(map[graph.Key]struct{}, n*k)
	edges := make([]graph.Edge, 0, n*k)
	for i := 0; i < n; i++ {
		// Expand a window around i's sorted position, always taking the
		// closer of the two frontier candidates.
		lo, hi := pos[i]-1, pos[i]+1
		for taken := 0; taken < k; taken++ {
			var j int
			switch {
			case lo < 0 && hi >= n:
				taken = k // no candidates left
				continue
			case lo < 0:
				j = order[hi]
				hi++
			case hi >= n:
				j = order[lo]
				lo--
			default:
				dLo := values[i] - values[order[lo]]
				dHi := values[order[hi]] - values[i]
				if dLo <= dHi {
					j = order[lo]
					lo--
				} else {
					j = order[hi]
					hi++
				}
			}
			key := graph.MakeKey(i, j)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			d := values[i] - values[j]
			if w := math.Exp(-d * d * inv); w > 0 {
				edges = append(edges, graph.Edge{I: key.I, J: key.J, W: w})
			}
		}
	}
	return graph.MustFromEdges(n, edges, nil)
}

// regionOf lays out six disjoint rectangular patches. Each patch spans
// roughly rows/6 × cols/8 cells.
func regionOf(r, c, rows, cols int) Region {
	h, w := rows/6, cols/8
	if h < 1 {
		h = 1
	}
	if w < 1 {
		w = 1
	}
	type rect struct {
		r0, c0 int
		reg    Region
	}
	rects := []rect{
		{4 * rows / 6, 3 * cols / 8, RegionSouthernAfrica},
		{3 * rows / 6, 1 * cols / 8, RegionBrazil},
		{2 * rows / 6, 0 * cols / 8, RegionPeru},
		{4 * rows / 6, 6 * cols / 8, RegionAustralia},
		{2 * rows / 6, 4 * cols / 8, RegionEqAfrica},
		{2 * rows / 6, 2 * cols / 8, RegionAmazon},
	}
	for _, rc := range rects {
		if r >= rc.r0 && r < rc.r0+h && c >= rc.c0 && c < rc.c0+w {
			return rc.reg
		}
	}
	return RegionNone
}

// EventNodeLabels returns per-cell ground truth for the event
// transition: true for cells inside the four shifted regions.
func (d *Dataset) EventNodeLabels() []bool {
	out := make([]bool, len(d.Region))
	for i, r := range d.Region {
		switch r {
		case RegionSouthernAfrica, RegionBrazil, RegionPeru, RegionAustralia:
			out[i] = true
		}
	}
	return out
}

// RegionMeans returns the mean precipitation per scripted region for
// every year — the series behind the paper's Figure 10.
func (d *Dataset) RegionMeans() map[Region][]float64 {
	out := make(map[Region][]float64)
	counts := make(map[Region]int)
	for _, r := range d.Region {
		counts[r]++
	}
	for reg := RegionSouthernAfrica; reg <= RegionAmazon; reg++ {
		out[reg] = make([]float64, len(d.Values))
	}
	for t, v := range d.Values {
		sums := make(map[Region]float64)
		for i, r := range d.Region {
			sums[r] += v[i]
		}
		for reg := RegionSouthernAfrica; reg <= RegionAmazon; reg++ {
			if counts[reg] > 0 {
				out[reg][t] = sums[reg] / float64(counts[reg])
			}
		}
	}
	return out
}
