// Package afm implements the Akoglu–Faloutsos event-detection baseline
// ("AFM" in the paper's §3.4): per-node local features extracted from
// egonets, pairwise feature-correlation ("dependency") matrices over a
// sliding window, and the Ide–Kashima eigenvector machinery applied to
// those matrices instead of the raw adjacency.
//
// The paper declines to benchmark AFM quantitatively because its output
// depends on the chosen feature set; this package implements it anyway
// so the repository covers every method the paper discusses, with the
// feature set the AFM paper itself leads with (degrees, egonet size and
// weight). The published qualitative claim — local egonet features
// cannot tell a structurally pivotal change (the toy's r7–r8 bridge)
// from a benign one (b1–b3) because both look like small weight
// wiggles locally — is checked in this package's tests.
package afm

import (
	"fmt"
	"math"

	"dyngraph/internal/dense"
	"dyngraph/internal/graph"
	"dyngraph/internal/sparse"
)

// Feature indices extracted per node per instance.
const (
	FeatWeightedDegree = iota // total incident weight
	FeatDegree                // neighbor count
	FeatEgonetEdges           // edges inside the 1-hop egonet
	FeatEgonetWeight          // total weight inside the egonet
	FeatMaxEdgeWeight         // heaviest incident edge
	NumFeatures
)

// NodeFeatures extracts the n×NumFeatures local-feature matrix of one
// graph instance. All features are egonet-local, per the AFM design.
func NodeFeatures(g *graph.Graph) [][]float64 {
	n := g.N()
	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		f := make([]float64, NumFeatures)
		idx, w := g.Neighbors(v)
		f[FeatDegree] = float64(len(idx))
		var maxW float64
		inEgo := make(map[int]bool, len(idx)+1)
		inEgo[v] = true
		for k, u := range idx {
			f[FeatWeightedDegree] += w[k]
			if w[k] > maxW {
				maxW = w[k]
			}
			inEgo[u] = true
		}
		f[FeatMaxEdgeWeight] = maxW
		// Egonet-internal edges: incident edges plus edges among
		// neighbors.
		f[FeatEgonetEdges] = float64(len(idx))
		f[FeatEgonetWeight] = f[FeatWeightedDegree]
		for _, u := range idx {
			uidx, uw := g.Neighbors(u)
			for k2, x := range uidx {
				if x > u && x != v && inEgo[x] {
					f[FeatEgonetEdges]++
					f[FeatEgonetWeight] += uw[k2]
				}
			}
		}
		out[v] = f
	}
	return out
}

// Config configures the detector.
type Config struct {
	// Window is the number of past instances whose feature series feed
	// each dependency matrix (default 5, as in the AFM paper's setup).
	Window int
	// MaxIter / Tol control the power iterations (defaults 1000/1e-10).
	MaxIter int
	Tol     float64
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 5
	}
	return c.Window
}

// Result is the detector output.
type Result struct {
	// TransitionScores[t] is the anomaly score of transition t → t+1,
	// averaged over features.
	TransitionScores []float64
	// NodeScores[t][i] is node i's anomaly score at that transition.
	NodeScores [][]float64
}

// Run executes AFM over the sequence. It needs at least two instances;
// early transitions use however much history exists.
func Run(seq *graph.Sequence, cfg Config) (*Result, error) {
	T := seq.T()
	if T < 2 {
		return nil, fmt.Errorf("afm: sequence needs at least 2 instances, got %d", T)
	}
	n := seq.N()
	w := cfg.window()

	// Feature series: feats[t][v][f].
	feats := make([][][]float64, T)
	for t := 0; t < T; t++ {
		feats[t] = NodeFeatures(seq.At(t))
	}

	res := &Result{
		TransitionScores: make([]float64, T-1),
		NodeScores:       make([][]float64, T-1),
	}
	// Previous activity vector per feature (the Ide–Kashima summary
	// with w=1 over dependency matrices, which keeps the per-transition
	// cost at one eigenvector per feature).
	prev := make([][]float64, NumFeatures)
	for f := 0; f < NumFeatures; f++ {
		prev[f] = activityOf(dependencyMatrix(feats, f, 0, w, n), cfg)
	}
	for t := 1; t < T; t++ {
		nodeScores := make([]float64, n)
		var zSum float64
		for f := 0; f < NumFeatures; f++ {
			a := activityOf(dependencyMatrix(feats, f, t, w, n), cfg)
			zSum += 1 - sparse.Dot(prev[f], a)
			for i := 0; i < n; i++ {
				nodeScores[i] += math.Abs(a[i] - prev[f][i])
			}
			prev[f] = a
		}
		res.TransitionScores[t-1] = zSum / NumFeatures
		for i := range nodeScores {
			nodeScores[i] /= NumFeatures
		}
		res.NodeScores[t-1] = nodeScores
	}
	return res, nil
}

// dependencyMatrix builds the n×n Pearson-correlation matrix of feature
// f's per-node time series over the window ending at instance t.
// Correlations are clamped to [0, 1] (negative dependency is treated as
// no dependency, keeping the matrix non-negative for the Perron
// machinery); zero-variance series correlate with nothing.
func dependencyMatrix(feats [][][]float64, f, t, w, n int) *dense.Matrix {
	lo := t - w + 1
	if lo < 0 {
		lo = 0
	}
	length := t - lo + 1
	series := make([][]float64, n)
	for v := 0; v < n; v++ {
		s := make([]float64, length)
		for k := 0; k < length; k++ {
			s[k] = feats[lo+k][v][f]
		}
		series[v] = normalizeSeries(s)
	}
	m := dense.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
		if series[i] == nil {
			continue
		}
		for j := i + 1; j < n; j++ {
			if series[j] == nil {
				continue
			}
			c := sparse.Dot(series[i], series[j])
			if c > 0 {
				m.Set(i, j, c)
				m.Set(j, i, c)
			}
		}
	}
	return m
}

// normalizeSeries mean-centers and unit-normalizes a series so Pearson
// correlation reduces to a dot product; nil for zero variance.
func normalizeSeries(s []float64) []float64 {
	mean := sparse.Sum(s) / float64(len(s))
	for i := range s {
		s[i] -= mean
	}
	norm := sparse.Norm2(s)
	if norm < 1e-14 {
		return nil
	}
	sparse.Scale(1/norm, s)
	return s
}

// activityOf returns the unit leading eigenvector of a dense
// non-negative symmetric matrix by shifted power iteration,
// sign-canonicalized to a non-negative sum.
func activityOf(m *dense.Matrix, cfg Config) []float64 {
	n := m.Rows
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-10
	}
	// Shift by the max row sum so the dominant eigenvalue is strictly
	// largest in magnitude (same trick as internal/act).
	var shift float64
	for i := 0; i < n; i++ {
		var rs float64
		for _, v := range m.Row(i) {
			rs += math.Abs(v)
		}
		if rs > shift {
			shift = rs
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	norm(x)
	y := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		m.MulVec(y, x)
		sparse.Axpy(shift, x, y)
		if sparse.Norm2(y) == 0 {
			break
		}
		norm(y)
		var diff float64
		for i := range x {
			d := x[i] - y[i]
			diff += d * d
		}
		copy(x, y)
		if math.Sqrt(diff) < tol {
			break
		}
	}
	if sparse.Sum(x) < 0 {
		sparse.Scale(-1, x)
	}
	return x
}

func norm(v []float64) {
	n := sparse.Norm2(v)
	if n == 0 {
		return
	}
	sparse.Scale(1/n, v)
}
