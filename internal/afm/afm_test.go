package afm

import (
	"math"
	"testing"

	"dyngraph/internal/commute"
	"dyngraph/internal/core"
	"dyngraph/internal/datagen"
	"dyngraph/internal/graph"
)

func TestNodeFeaturesTriangle(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(0, 2, 3)
	// vertex 3 isolated
	g := b.MustBuild()
	f := NodeFeatures(g)

	if f[0][FeatWeightedDegree] != 4 || f[0][FeatDegree] != 2 {
		t.Fatalf("v0 degrees = %v", f[0])
	}
	if f[0][FeatMaxEdgeWeight] != 3 {
		t.Fatalf("v0 max edge = %g", f[0][FeatMaxEdgeWeight])
	}
	// v0's egonet is the whole triangle: 3 edges, total weight 6.
	if f[0][FeatEgonetEdges] != 3 || f[0][FeatEgonetWeight] != 6 {
		t.Fatalf("v0 egonet = %v", f[0])
	}
	for k := 0; k < NumFeatures; k++ {
		if f[3][k] != 0 {
			t.Fatalf("isolated vertex feature %d = %g", k, f[3][k])
		}
	}
}

func TestRunStaticSequenceScoresNothing(t *testing.T) {
	b := graph.NewBuilder(8)
	for i := 1; i < 8; i++ {
		b.AddEdge(i-1, i, float64(i))
	}
	g := b.MustBuild()
	seq := graph.MustSequence([]*graph.Graph{g, g, g, g})
	res, err := Run(seq, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	for tt, z := range res.TransitionScores {
		if math.Abs(z) > 1e-8 {
			t.Fatalf("static transition %d scored %g", tt, z)
		}
	}
}

func TestRunDetectsFeatureShift(t *testing.T) {
	// A hub whose degree collapses produces an activity shift AFM must
	// notice.
	mk := func(hubEdges int) *graph.Graph {
		b := graph.NewBuilder(10)
		for i := 1; i <= hubEdges; i++ {
			b.AddEdge(0, i, 2)
		}
		for i := 1; i < 9; i++ {
			b.AddEdge(i, i+1, 1)
		}
		return b.MustBuild()
	}
	seq := graph.MustSequence([]*graph.Graph{
		mk(9), mk(9), mk(9), mk(2), // collapse at the last transition
	})
	res, err := Run(seq, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.TransitionScores) - 1
	for tt := 0; tt < last; tt++ {
		if res.TransitionScores[tt] >= res.TransitionScores[last] {
			t.Fatalf("calm transition %d (%g) should score below the collapse (%g)",
				tt, res.TransitionScores[tt], res.TransitionScores[last])
		}
	}
}

func TestRunRejectsShortSequence(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	if _, err := Run(graph.MustSequence([]*graph.Graph{g}), Config{}); err == nil {
		t.Fatal("want error")
	}
}

// The paper's §3.4 claim: AFM's egonet-local features barely
// distinguish the structurally pivotal r7–r8 weakening from the benign
// b1–b3 weakening (both are small local weight changes), while CAD
// separates them by an order of magnitude.
func TestAFMCannotSeparateBridgeFromBenign(t *testing.T) {
	// Extend the toy example with calm lead-in instances so AFM has a
	// feature history window.
	toy := datagen.Toy()
	g0, g1 := toy.At(0), toy.At(1)
	seq := graph.MustSequence([]*graph.Graph{g0, g0, g0, g1})

	res, err := Run(seq, Config{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	afmScores := res.NodeScores[len(res.NodeScores)-1]

	// Direct comparison of the two weakened pairs' endpoints:
	// r7/r8 (pivotal) vs b3 (benign endpoint not touched by S1).
	afmPivotal := math.Max(afmScores[datagen.R7], afmScores[datagen.R8])
	afmBenign := afmScores[datagen.B3]

	o0 := commute.NewExact(g0)
	o1 := commute.NewExact(g1)
	cad := core.NodeScores(seq.N(), core.TransitionScores(g0, g1, o0, o1, core.VariantCAD, false))
	cadPivotal := math.Max(cad[datagen.R7], cad[datagen.R8])
	cadBenign := cad[datagen.B3]

	cadRatio := cadPivotal / math.Max(cadBenign, 1e-12)
	afmSep := afmPivotal / math.Max(afmBenign, 1e-12)
	if cadRatio < 10 {
		t.Fatalf("CAD pivotal/benign ratio = %g, want ≥ 10", cadRatio)
	}
	if afmSep >= cadRatio {
		t.Fatalf("AFM separation (%g) should trail CAD's (%g), per §3.4", afmSep, cadRatio)
	}
}

func TestDependencyMatrixProperties(t *testing.T) {
	// Two nodes with identical series correlate at 1; anti-correlated
	// series clamp to 0; constant series correlate with nothing.
	feats := [][][]float64{
		{{1}, {1}, {2}, {5}},
		{{2}, {2}, {1}, {5}},
		{{3}, {3}, {0}, {5}},
	}
	m := dependencyMatrix(feats, 0, 2, 3, 4)
	if got := m.At(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical series corr = %g, want 1", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Fatalf("anti-correlated series clamp = %g, want 0", got)
	}
	if got := m.At(0, 3); got != 0 {
		t.Fatalf("constant series corr = %g, want 0", got)
	}
	if got := m.At(3, 3); got != 1 {
		t.Fatalf("diagonal = %g, want 1", got)
	}
	if !m.IsSymmetric(0) {
		t.Fatal("dependency matrix not symmetric")
	}
}
