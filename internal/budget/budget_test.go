package budget

import "testing"

func TestAccountingAndWatermarks(t *testing.T) {
	a := New(1000) // high = 900, low = 750
	if a.OverHigh() || a.ReclaimTarget() != 0 {
		t.Fatal("empty ledger should be under the high watermark")
	}
	a.Set("a", 400)
	a.Set("b", 400)
	if got := a.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
	if a.OverHigh() {
		t.Fatal("800/1000 is under the 90% watermark")
	}
	a.Set("c", 150)
	if !a.OverHigh() {
		t.Fatal("950/1000 should be over the 90% watermark")
	}
	if got := a.ReclaimTarget(); got != 950-750 {
		t.Fatalf("ReclaimTarget = %d, want %d (down to the low watermark)", got, 950-750)
	}
	// Replacing a key's size adjusts the total, not accumulates.
	a.Set("a", 100)
	if got := a.Total(); got != 650 {
		t.Fatalf("Total after shrink = %d, want 650", got)
	}
	if a.ReclaimTarget() != 0 {
		t.Fatal("under high again: no reclaim")
	}
	a.Forget("b")
	if got, n := a.Total(), a.Count(); got != 250 || n != 2 {
		t.Fatalf("after Forget: total=%d count=%d, want 250, 2", got, n)
	}
	if got := a.Peak(); got != 950 {
		t.Fatalf("Peak = %d, want 950", got)
	}
}

func TestWouldExceed(t *testing.T) {
	a := New(1000)
	a.Set("a", 700)
	if a.WouldExceed(100) {
		t.Fatal("800 <= 900: admission fine")
	}
	if !a.WouldExceed(300) {
		t.Fatal("1000 > 900: admission should flag")
	}
}

func TestNilAccountantIsUnlimited(t *testing.T) {
	var a *Accountant
	if a != New(0) {
		t.Fatal("New(0) should return the nil ledger")
	}
	a.Set("x", 1<<40)
	a.Forget("x")
	if a.Total() != 0 || a.Count() != 0 || a.OverHigh() || a.ReclaimTarget() != 0 ||
		a.WouldExceed(1<<50) || a.Capacity() != 0 || a.Bytes("x") != 0 || a.Peak() != 0 {
		t.Fatal("nil accountant must be inert")
	}
}

func TestBadWatermarksPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("low > high should panic")
		}
	}()
	NewWithWatermarks(100, 0.5, 0.9)
}

func TestNegativeSizeClamped(t *testing.T) {
	a := New(100)
	a.Set("x", -5)
	if a.Total() != 0 {
		t.Fatalf("negative sizes clamp to 0, total=%d", a.Total())
	}
}
