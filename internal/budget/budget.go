// Package budget is the memory-governance ledger behind stream
// hibernation: a global byte budget with per-stream resident-size
// accounting and high/low watermarks.
//
// The package deliberately knows nothing about streams, detectors or
// eviction policy. Components that want to be governed implement Sizer
// (an estimated resident heap footprint); the serving layer records
// those estimates here after every state change and asks two
// questions: "are we over the high watermark?" and "how many bytes
// must go to reach the low one?". Which streams give those bytes back
// is the working-set tracker's job (internal/hibernate); how they give
// them back is the serving layer's (journal a snapshot, drop state).
//
// Watermark hysteresis is what keeps the governor from thrashing: it
// starts reclaiming above HighFrac·Capacity and keeps going until
// LowFrac·Capacity, so a stream rehydrated right after a reclaim pass
// has headroom to live in.
package budget

import (
	"fmt"
	"sync"
)

// Sizer reports an estimated resident heap footprint in bytes. The
// estimate walks slice capacities and fixed struct sizes — it is an
// accounting figure for admission and eviction decisions, not an exact
// allocator measurement.
type Sizer interface {
	SizeBytes() int64
}

// Default watermark fractions: reclaim starts at 90% of capacity and
// runs down to 75%.
const (
	DefaultHighFrac = 0.90
	DefaultLowFrac  = 0.75
)

// Accountant tracks per-key resident bytes against a global capacity.
// A nil *Accountant is a valid "unlimited" ledger: every method is
// nil-safe, records nothing and never asks for reclaim, so callers
// need no budget-enabled branches.
type Accountant struct {
	mu       sync.Mutex
	capacity int64
	high     int64 // reclaim trigger
	low      int64 // reclaim target
	sizes    map[string]int64
	total    int64
	peak     int64
}

// New returns an accountant for capacity bytes with the default
// watermarks. capacity <= 0 returns nil — the unlimited ledger.
func New(capacity int64) *Accountant {
	return NewWithWatermarks(capacity, DefaultHighFrac, DefaultLowFrac)
}

// NewWithWatermarks is New with explicit watermark fractions. It
// panics when the fractions are out of order or outside (0, 1] — a
// misconfigured governor would either never trigger or never stop.
func NewWithWatermarks(capacity int64, highFrac, lowFrac float64) *Accountant {
	if capacity <= 0 {
		return nil
	}
	if highFrac <= 0 || highFrac > 1 || lowFrac <= 0 || lowFrac > highFrac {
		panic(fmt.Sprintf("budget: watermarks low=%g high=%g (want 0 < low <= high <= 1)", lowFrac, highFrac))
	}
	return &Accountant{
		capacity: capacity,
		high:     int64(highFrac * float64(capacity)),
		low:      int64(lowFrac * float64(capacity)),
		sizes:    make(map[string]int64),
	}
}

// Set records key's current resident size, replacing any previous
// figure, and returns the new total.
func (a *Accountant) Set(key string, bytes int64) int64 {
	if a == nil {
		return 0
	}
	if bytes < 0 {
		bytes = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total += bytes - a.sizes[key]
	a.sizes[key] = bytes
	if a.total > a.peak {
		a.peak = a.total
	}
	return a.total
}

// Forget drops key from the ledger (hibernated or deleted: zero
// resident bytes).
func (a *Accountant) Forget(key string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total -= a.sizes[key]
	delete(a.sizes, key)
}

// Bytes returns key's recorded size (0 when unknown).
func (a *Accountant) Bytes(key string) int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sizes[key]
}

// Total returns the accounted resident bytes across all keys.
func (a *Accountant) Total() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Peak returns the highest total ever accounted — what a budget test
// asserts stayed under the configured capacity.
func (a *Accountant) Peak() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Count returns the number of accounted keys.
func (a *Accountant) Count() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sizes)
}

// Capacity returns the configured budget (0 for the nil ledger).
func (a *Accountant) Capacity() int64 {
	if a == nil {
		return 0
	}
	return a.capacity
}

// OverHigh reports whether the total has crossed the high watermark —
// the governor's reclaim trigger.
func (a *Accountant) OverHigh() bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total > a.high
}

// ReclaimTarget returns the bytes that must be freed to bring the
// total down to the low watermark, or 0 when the high watermark has
// not been crossed (hysteresis: reclaim starts high, stops low).
func (a *Accountant) ReclaimTarget() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total <= a.high {
		return 0
	}
	return a.total - a.low
}

// WouldExceed reports whether admitting extra more bytes would cross
// the high watermark — the admission check that lets a caller kick the
// governor before the allocation instead of after.
func (a *Accountant) WouldExceed(extra int64) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total+extra > a.high
}
