package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyngraph/internal/dense"
	"dyngraph/internal/graph"
	"dyngraph/internal/sparse"
)

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		b.AddEdge(perm[i-1], perm[i], 0.5+rng.Float64())
	}
	for k := 0; k < 2*n; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			b.SetEdge(i, j, 0.5+rng.Float64())
		}
	}
	return b.MustBuild()
}

func TestLargestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 40)
	a := g.Adjacency()

	vals, vecs, err := Largest(a, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dvals, _ := dense.EigenSym(g.DenseAdjacency())
	for j := 0; j < 3; j++ {
		want := dvals[len(dvals)-1-j]
		if math.Abs(vals[j]-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("λ%d = %g, want %g", j, vals[j], want)
		}
	}
	// Residual check: ‖A v − λ v‖ small.
	av := make([]float64, 40)
	for j := range vecs {
		a.MulVec(av, vecs[j])
		sparse.Axpy(-vals[j], vecs[j], av)
		if r := sparse.Norm2(av); r > 1e-6*(1+math.Abs(vals[j])) {
			t.Fatalf("residual %g for eigenpair %d", r, j)
		}
	}
}

func TestLargestOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 30)
	_, vecs, err := Largest(g.Adjacency(), 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vecs {
		for j := i; j < len(vecs); j++ {
			dot := sparse.Dot(vecs[i], vecs[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("<v%d, v%d> = %g, want %g", i, j, dot, want)
			}
		}
	}
}

func TestLargestArgValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(rng, 5)
	if _, _, err := Largest(g.Adjacency(), 0, Options{}); err == nil {
		t.Fatal("want error for k=0")
	}
	if _, _, err := Largest(g.Adjacency(), 6, Options{}); err == nil {
		t.Fatal("want error for k>n")
	}
}

func TestSmallestLaplacianMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 35)
	vals, vecs, err := SmallestLaplacian(g, 2, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dvals, _ := dense.EigenSym(g.DenseLaplacian())
	// dvals[0] ≈ 0 is the trivial constant mode; 1 and 2 are ours.
	for j := 0; j < 2; j++ {
		want := dvals[j+1]
		if math.Abs(vals[j]-want) > 1e-5*(1+want) {
			t.Fatalf("λ%d = %g, want %g", j, vals[j], want)
		}
	}
	// Eigenvectors orthogonal to the constant vector.
	for j := range vecs {
		if s := sparse.Sum(vecs[j]); math.Abs(s) > 1e-8 {
			t.Fatalf("eigenvector %d not mean-free: sum %g", j, s)
		}
	}
}

func TestSmallestLaplacianRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	if _, _, err := SmallestLaplacian(b.MustBuild(), 1, Options{}); err == nil {
		t.Fatal("want error for disconnected graph")
	}
}

func TestEigenmap2DSeparatesClusters(t *testing.T) {
	// Two cliques with a weak bridge: the Fiedler coordinate must put
	// the cliques on opposite sides.
	b := graph.NewBuilder(20)
	for c := 0; c < 2; c++ {
		base := c * 10
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				b.AddEdge(base+i, base+j, 2)
			}
		}
	}
	b.AddEdge(0, 10, 0.01)
	g := b.MustBuild()
	coords, err := Eigenmap2D(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var aMean, bMean float64
	for i := 0; i < 10; i++ {
		aMean += coords[i][0] / 10
		bMean += coords[10+i][0] / 10
	}
	if aMean*bMean >= 0 {
		t.Fatalf("Fiedler coordinate does not separate cliques: %g vs %g", aMean, bMean)
	}
}

// Property: Lanczos' top eigenvalue matches the dense one on random
// connected graphs.
func TestQuickLanczosTopEigenvalue(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := randomConnected(rng, n)
		vals, _, err := Largest(g.Adjacency(), 1, Options{Seed: seed})
		if err != nil {
			return false
		}
		dvals, _ := dense.EigenSym(g.DenseAdjacency())
		want := dvals[len(dvals)-1]
		return math.Abs(vals[0]-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the Fiedler value from inverse iteration matches the dense
// eigensolver on random connected graphs.
func TestQuickFiedlerValue(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		g := randomConnected(rng, n)
		vals, _, err := SmallestLaplacian(g, 1, Options{Seed: seed})
		if err != nil {
			return false
		}
		dvals, _ := dense.EigenSym(g.DenseLaplacian())
		return math.Abs(vals[0]-dvals[1]) <= 1e-5*(1+dvals[1])
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
