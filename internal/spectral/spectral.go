// Package spectral provides sparse symmetric eigensolvers: Lanczos
// with full reorthogonalization for the largest eigenpairs (the
// adjacency spectrum ACT relies on) and preconditioned inverse
// iteration for the smallest non-trivial Laplacian eigenpairs (the
// spectral embedding behind Figure 2, usable far beyond the dense
// eigensolver's O(n³) reach).
//
// Both solvers work on the CSR matrices produced by internal/graph and
// reuse the Laplacian solver from internal/solver, so the whole stack
// stays stdlib-only.
package spectral

import (
	"errors"
	"fmt"
	"math"

	"dyngraph/internal/dense"
	"dyngraph/internal/graph"
	"dyngraph/internal/solver"
	"dyngraph/internal/sparse"
	"dyngraph/internal/xrand"
)

// Options configures the iterative eigensolvers.
type Options struct {
	// MaxIter caps Lanczos steps / inverse-iteration sweeps
	// (default 300).
	MaxIter int
	// Tol is the convergence tolerance on eigenvector updates
	// (default 1e-10).
	Tol float64
	// Seed drives the random start vectors.
	Seed int64
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 300
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-10
	}
	return o.Tol
}

// ErrNoConvergence is returned when an eigensolver exhausts its
// iteration budget.
var ErrNoConvergence = errors.New("spectral: eigensolver did not converge")

// operator is a symmetric linear map, the abstraction Lanczos runs on:
// an explicit sparse matrix or an implicitly applied (pseudo)inverse.
type operator interface {
	apply(dst, src []float64)
	dim() int
}

type matrixOp struct{ a *sparse.CSR }

func (m matrixOp) apply(dst, src []float64) { m.a.MulVec(dst, src) }
func (m matrixOp) dim() int                 { return m.a.Rows }

// pinvOp applies the Laplacian pseudoinverse via a PCG solve. Its top
// eigenpairs are the reciprocals of L's smallest non-trivial ones.
type pinvOp struct {
	lap *solver.Laplacian
	err error
}

func (p *pinvOp) apply(dst, src []float64) {
	x, _, err := p.lap.Solve(src)
	if err != nil && p.err == nil {
		p.err = err
	}
	copy(dst, x)
}
func (p *pinvOp) dim() int { return p.lap.N() }

// Largest computes the k algebraically largest eigenpairs of the
// symmetric matrix a using Lanczos with full reorthogonalization.
// Eigenvalues are returned descending; vecs[j] is the eigenvector of
// vals[j]. k must be positive and at most a.Rows.
func Largest(a *sparse.CSR, k int, opt Options) (vals []float64, vecs [][]float64, err error) {
	if a.Cols != a.Rows {
		return nil, nil, fmt.Errorf("spectral: Largest needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	return lanczos(matrixOp{a: a}, k, opt, nil)
}

// lanczos runs Lanczos with full reorthogonalization on op, optionally
// deflating a fixed subspace (each start/iterate is kept orthogonal to
// the given vectors).
func lanczos(op operator, k int, opt Options, deflateAgainst [][]float64) (vals []float64, vecs [][]float64, err error) {
	n := op.dim()
	if k <= 0 || k > n {
		return nil, nil, fmt.Errorf("spectral: k = %d out of range [1, %d]", k, n)
	}
	maxSteps := opt.maxIter()
	if maxSteps > n {
		maxSteps = n
	}
	if maxSteps < k {
		maxSteps = k
	}

	rng := xrand.New(opt.Seed)
	// Lanczos basis (rows are basis vectors).
	basis := make([][]float64, 0, maxSteps)
	alpha := make([]float64, 0, maxSteps)
	beta := make([]float64, 0, maxSteps)

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Normal(0, 1)
	}
	for _, u := range deflateAgainst {
		sparse.Axpy(-sparse.Dot(v, u), u, v)
	}
	normalizeVec(v)
	w := make([]float64, n)

	for step := 0; step < maxSteps; step++ {
		basis = append(basis, append([]float64(nil), v...))
		op.apply(w, v)
		al := sparse.Dot(v, w)
		alpha = append(alpha, al)
		// w ← w − α v − β v_prev, then full reorthogonalization
		// against every basis vector and the deflated subspace (two
		// passes are enough in practice).
		for pass := 0; pass < 2; pass++ {
			for _, b := range basis {
				sparse.Axpy(-sparse.Dot(w, b), b, w)
			}
			for _, u := range deflateAgainst {
				sparse.Axpy(-sparse.Dot(w, u), u, w)
			}
		}
		bt := sparse.Norm2(w)
		if bt < 1e-13 {
			break // invariant subspace found
		}
		beta = append(beta, bt)
		for i := range v {
			v[i] = w[i] / bt
		}
	}

	m := len(basis)
	if m < k {
		return nil, nil, fmt.Errorf("spectral: Krylov space collapsed at dimension %d < k = %d", m, k)
	}
	// Solve the m×m tridiagonal eigenproblem densely (m is small).
	t := dense.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, alpha[i])
		if i+1 < m {
			t.Set(i, i+1, beta[i])
			t.Set(i+1, i, beta[i])
		}
	}
	tvals, tvecs := dense.EigenSym(t)

	vals = make([]float64, k)
	vecs = make([][]float64, k)
	for j := 0; j < k; j++ {
		col := m - 1 - j // ascending order → take from the top
		vals[j] = tvals[col]
		u := make([]float64, n)
		for s := 0; s < m; s++ {
			sparse.Axpy(tvecs.At(s, col), basis[s], u)
		}
		normalizeVec(u)
		vecs[j] = u
	}
	return vals, vecs, nil
}

// SmallestLaplacian computes the k smallest *non-trivial* Laplacian
// eigenpairs of a connected graph (skipping the constant null vector)
// by running Lanczos on the Laplacian pseudoinverse — each operator
// application is one PCG solve, and L⁺'s dominant eigenpairs are the
// reciprocals of L's smallest non-trivial ones, so convergence is fast
// even when the small eigenvalues cluster. vals ascend; vecs[0] is the
// Fiedler vector. It returns an error for disconnected graphs, whose
// extra null vectors make "non-trivial" ambiguous.
func SmallestLaplacian(g *graph.Graph, k int, opt Options) (vals []float64, vecs [][]float64, err error) {
	n := g.N()
	if k <= 0 || k >= n {
		return nil, nil, fmt.Errorf("spectral: k = %d out of range [1, %d)", k, n-1)
	}
	if !g.IsConnected() {
		return nil, nil, errors.New("spectral: SmallestLaplacian requires a connected graph")
	}
	op := &pinvOp{lap: solver.NewLaplacian(g, solver.Options{Tol: 1e-12})}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1 / math.Sqrt(float64(n))
	}
	muVals, muVecs, err := lanczos(op, k, opt, [][]float64{ones})
	if err != nil {
		return nil, nil, err
	}
	if op.err != nil {
		return nil, nil, fmt.Errorf("spectral: pseudoinverse solve: %w", op.err)
	}
	// Convert: λ_j = 1/μ_j, keeping ascending λ order (μ descending).
	l := g.Laplacian()
	tmp := make([]float64, n)
	vals = make([]float64, k)
	vecs = muVecs
	for j := 0; j < k; j++ {
		if muVals[j] <= 0 {
			return nil, nil, ErrNoConvergence
		}
		// Rayleigh quotient against L itself is more accurate than
		// 1/μ once solver tolerance enters.
		l.MulVec(tmp, vecs[j])
		vals[j] = sparse.Dot(vecs[j], tmp)
	}
	return vals, vecs, nil
}

// Eigenmap2D returns the 2-D spectral embedding of a connected graph:
// coordinate i is (f_i, g_i) with f the Fiedler vector and g the third
// Laplacian eigenvector — the construction behind the paper's Figure 2,
// computed sparsely.
func Eigenmap2D(g *graph.Graph, opt Options) ([][2]float64, error) {
	_, vecs, err := SmallestLaplacian(g, 2, opt)
	if err != nil {
		return nil, err
	}
	out := make([][2]float64, g.N())
	for i := range out {
		out[i] = [2]float64{vecs[0][i], vecs[1][i]}
	}
	return out, nil
}

func normalizeVec(v []float64) {
	n := sparse.Norm2(v)
	if n == 0 {
		return
	}
	sparse.Scale(1/n, v)
}
