package spectral

import (
	"math/rand"
	"testing"

	"dyngraph/internal/dense"
)

// Ablation: sparse Lanczos / inverse-Lanczos vs the dense O(n³)
// eigensolver for the spectral quantities the reproduction needs
// (ACT's top adjacency eigenvector, Figure 2's eigenmap).

func BenchmarkLargestLanczos(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 2000)
	a := g.Adjacency()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Largest(a, 1, Options{Seed: 1, MaxIter: 80}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSmallestLaplacianSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SmallestLaplacian(g, 2, Options{Seed: 1, MaxIter: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseEigenReference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 300)
	m := g.DenseLaplacian()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = dense.EigenSym(m)
	}
}
