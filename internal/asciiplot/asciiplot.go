// Package asciiplot renders small line charts and bar rows as plain
// text, so cmd/cadbench can show the paper's *figures* — ROC curves,
// timeline bars — directly in a terminal next to the numeric tables.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	// X and Y must have equal lengths; X ascending.
	X, Y []float64
}

// Lines renders the series on a width×height character grid with a
// shared scale, one marker rune per series, plus axis annotations.
// Invalid input (no series, empty or mismatched points) returns an
// error rather than a garbled chart.
func Lines(series []Series, width, height int) (string, error) {
	if len(series) == 0 {
		return "", fmt.Errorf("asciiplot: no series")
	}
	if width < 10 {
		width = 60
	}
	if height < 4 {
		height = 16
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return "", fmt.Errorf("asciiplot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, m rune) {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
		if grid[row][col] == ' ' {
			grid[row][col] = m
		}
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		// Dense interpolation so lines read as lines, not dots.
		for i := 1; i < len(s.X); i++ {
			steps := 2 * width
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(steps)
				plot(s.X[i-1]+f*(s.X[i]-s.X[i-1]), s.Y[i-1]+f*(s.Y[i]-s.Y[i-1]), m)
			}
		}
		if len(s.X) == 1 {
			plot(s.X[0], s.Y[0], m)
		}
	}

	var b strings.Builder
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		}
		b.WriteString(label)
		b.WriteString("|")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("        +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	b.WriteString(fmt.Sprintf("        %-10.2f%*s\n", minX, width-2, fmt.Sprintf("%.2f", maxX)))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	b.WriteString("        " + strings.Join(legend, "   ") + "\n")
	return b.String(), nil
}

// Bars renders one bar row per value: a label, the count and a block
// bar, clipped at maxBar characters — the Figure 7 timeline shape.
func Bars(labels []string, values []float64, maxBar int) (string, error) {
	if len(labels) != len(values) {
		return "", fmt.Errorf("asciiplot: %d labels vs %d values", len(labels), len(values))
	}
	if maxBar <= 0 {
		maxBar = 40
	}
	var peak float64
	for _, v := range values {
		if v > peak {
			peak = v
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if peak > 0 {
			n = int(v / peak * float64(maxBar))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-12s %6.1f %s\n", labels[i], v, strings.Repeat("█", n))
	}
	return b.String(), nil
}

// Scatter renders classed 2-D points on a width×height grid, one
// marker per class — enough to show cluster structure (the paper's
// Figure 4a) in a terminal.
func Scatter(x, y []float64, class []int, width, height int) (string, error) {
	if len(x) != len(y) || len(x) != len(class) {
		return "", fmt.Errorf("asciiplot: Scatter length mismatch (%d, %d, %d)", len(x), len(y), len(class))
	}
	if len(x) == 0 {
		return "", fmt.Errorf("asciiplot: Scatter with no points")
	}
	if width < 10 {
		width = 60
	}
	if height < 4 {
		height = 20
	}
	markers := []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}
	minX, maxX := x[0], x[0]
	minY, maxY := y[0], y[0]
	for i := range x {
		minX = math.Min(minX, x[i])
		maxX = math.Max(maxX, x[i])
		minY = math.Min(minY, y[i])
		maxY = math.Max(maxY, y[i])
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for i := range x {
		col := int((x[i] - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((y[i]-minY)/(maxY-minY)*float64(height-1))
		m := markers[((class[i]%len(markers))+len(markers))%len(markers)]
		grid[row][col] = m
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteString("  |")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	return b.String(), nil
}

// Heatmap renders a matrix of non-negative intensities as shaded
// characters (the paper's Figure 4b adjacency view), normalizing by
// the maximum cell.
func Heatmap(cells [][]float64) (string, error) {
	if len(cells) == 0 {
		return "", fmt.Errorf("asciiplot: empty heatmap")
	}
	shades := []rune(" .:-=+*#%@")
	var peak float64
	width := len(cells[0])
	for _, row := range cells {
		if len(row) != width {
			return "", fmt.Errorf("asciiplot: ragged heatmap rows")
		}
		for _, v := range row {
			if v > peak {
				peak = v
			}
		}
	}
	var b strings.Builder
	for _, row := range cells {
		b.WriteString("  ")
		for _, v := range row {
			idx := 0
			if peak > 0 {
				idx = int(v / peak * float64(len(shades)-1))
			}
			b.WriteRune(shades[idx])
			b.WriteRune(shades[idx]) // double width ≈ square cells
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}
