package asciiplot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	out, err := Lines([]Series{
		{Name: "diag", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "flat", X: []float64{0, 1}, Y: []float64{0.5, 0.5}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "* diag") || !strings.Contains(out, "o flat") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.00") || !strings.Contains(out, "0.00") {
		t.Fatalf("axis labels missing:\n%s", out)
	}
	// The diagonal's marker must appear near top-right and bottom-left.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("diagonal missing from top row:\n%s", out)
	}
	if !strings.Contains(lines[9], "*") {
		t.Fatalf("diagonal missing from bottom row:\n%s", out)
	}
}

func TestLinesErrors(t *testing.T) {
	if _, err := Lines(nil, 40, 10); err == nil {
		t.Fatal("want no-series error")
	}
	if _, err := Lines([]Series{{Name: "bad", X: []float64{1}, Y: nil}}, 40, 10); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestLinesConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out, err := Lines([]Series{{Name: "c", X: []float64{2, 2}, Y: []float64{3, 3}}}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "c") {
		t.Fatal("legend missing")
	}
}

func TestBars(t *testing.T) {
	out, err := Bars([]string{"a", "b", "c"}, []float64{10, 5, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rows = %d", len(lines))
	}
	if strings.Count(lines[0], "█") != 10 {
		t.Fatalf("peak bar length: %q", lines[0])
	}
	if strings.Count(lines[1], "█") != 5 {
		t.Fatalf("half bar length: %q", lines[1])
	}
	if strings.Contains(lines[2], "█") {
		t.Fatalf("zero bar drawn: %q", lines[2])
	}
}

func TestBarsMismatch(t *testing.T) {
	if _, err := Bars([]string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestScatter(t *testing.T) {
	out, err := Scatter(
		[]float64{0, 0, 10, 10},
		[]float64{0, 1, 9, 10},
		[]int{0, 0, 1, 1},
		30, 10,
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
	if _, err := Scatter([]float64{1}, []float64{1, 2}, []int{0}, 10, 5); err == nil {
		t.Fatal("want mismatch error")
	}
	if _, err := Scatter(nil, nil, nil, 10, 5); err == nil {
		t.Fatal("want empty error")
	}
}

func TestHeatmap(t *testing.T) {
	out, err := Heatmap([][]float64{{0, 1}, {0.5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows = %d", len(lines))
	}
	if !strings.Contains(lines[0], "@") {
		t.Fatalf("peak shade missing: %q", lines[0])
	}
	if strings.Contains(lines[0], "@@@@") {
		t.Fatalf("zero cell shaded: %q", lines[0])
	}
	if _, err := Heatmap(nil); err == nil {
		t.Fatal("want empty error")
	}
	if _, err := Heatmap([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("want ragged error")
	}
}
