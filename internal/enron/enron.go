// Package enron simulates the organizational email network the paper's
// §4.2.1 evaluates on. The real Enron corpus (151 employees, 48 monthly
// graph instances, Dec 1998 – Nov 2002) is not redistributable here, so
// this package generates a statistically similar surrogate: a two-tier
// org chart with role-structured Poisson email traffic, plus scripted
// events that mirror the scandal timeline the paper verifies against —
// each event recorded as machine-checkable ground truth.
//
// Scripted events (transition indices follow the paper's narrative):
//
//	t=12    a trader suddenly emails many other traders
//	        (the Chris Germany anecdote)
//	t=24    the CEO's assistant hands off to the incoming CEO's circle
//	        (the Rosalie Fleming anecdote)
//	t=32    the returning CEO starts emailing employees across every
//	        role (the Kenneth Lay anecdote — the paper's Figure 8)
//	t=32    a VP multiplies volume on *existing* contacts — a volume
//	        anomaly that should rank below the CEO's structural one
//	        (the James Steffes contrast)
//	t=34    an acquisition-planning clique forms among executives and
//	        legal (the David Delainey anecdote)
//	t=35–38 bankruptcy churn among legal, VPs and traders
//
// Months 0–22 and 40–47 are calm baseline traffic.
package enron

import (
	"fmt"

	"dyngraph/internal/graph"
	"dyngraph/internal/xrand"
)

// Role identifies an employee's job function.
type Role int

// Roles in the simulated organization.
const (
	RoleCEO Role = iota
	RoleIncomingCEO
	RoleAssistant
	RoleVP
	RoleLegal
	RoleTrader
	RoleEmployee
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleCEO:
		return "ceo"
	case RoleIncomingCEO:
		return "incoming-ceo"
	case RoleAssistant:
		return "assistant"
	case RoleVP:
		return "vp"
	case RoleLegal:
		return "legal"
	case RoleTrader:
		return "trader"
	case RoleEmployee:
		return "employee"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Event is one scripted anomaly with its ground truth.
type Event struct {
	// Transition is the 0-based transition index (graph t → t+1).
	Transition int
	// Nodes are the employees responsible for the event.
	Nodes []int
	// Structural reports whether the event changes the *structure* of
	// the node's neighborhood (new contacts) rather than only traffic
	// volume on existing edges. The paper's claim is that CAD flags
	// structural events and ranks pure-volume ones lower.
	Structural bool
	// Description explains the analogy to the real timeline.
	Description string
}

// Config parameterizes the simulator.
type Config struct {
	// Months is the number of graph instances (default 48).
	Months int
	// Seed drives the traffic sampling.
	Seed int64
}

func (c Config) months() int {
	if c.Months <= 0 {
		return 48
	}
	return c.Months
}

// Dataset is the generated corpus.
type Dataset struct {
	Seq    *graph.Sequence
	Roles  []Role
	Names  []string
	Events []Event
	// CEO is the Kenneth-Lay-analog vertex, VolumeVP the
	// James-Steffes-analog, Assistant the Rosalie-Fleming-analog,
	// AcqExec the David-Delainey-analog and BurstTrader the
	// Chris-Germany-analog — exported so experiments can check the
	// specific anecdotes.
	CEO, VolumeVP, Assistant, AcqExec, BurstTrader int
}

// Employee-count layout: 151 total, like the paper's corpus.
const (
	NumEmployees = 151
	numVPs       = 8
	numLegal     = 10
	numTraders   = 30
	numAssistant = 2
)

// Generate builds the simulated 48-month corpus.
func Generate(cfg Config) *Dataset {
	months := cfg.months()
	rng := xrand.New(cfg.Seed)

	d := &Dataset{
		Roles: make([]Role, NumEmployees),
		Names: make([]string, NumEmployees),
	}
	// Vertex layout: 0 CEO, 1 incoming CEO, 2..3 assistants, then VPs,
	// legal, traders, and rank-and-file employees split over the VPs'
	// departments.
	idx := 0
	assign := func(role Role, count int, name string) (first int) {
		first = idx
		for k := 0; k < count; k++ {
			d.Roles[idx] = role
			d.Names[idx] = fmt.Sprintf("%s-%d", name, k)
			idx++
		}
		return first
	}
	d.CEO = assign(RoleCEO, 1, "ceo")
	incoming := assign(RoleIncomingCEO, 1, "incoming-ceo")
	d.Assistant = assign(RoleAssistant, numAssistant, "assistant")
	vp0 := assign(RoleVP, numVPs, "vp")
	legal0 := assign(RoleLegal, numLegal, "legal")
	trader0 := assign(RoleTrader, numTraders, "trader")
	emp0 := assign(RoleEmployee, NumEmployees-idx, "employee")
	numEmp := NumEmployees - emp0

	d.VolumeVP = vp0
	d.AcqExec = vp0 + 1
	d.BurstTrader = trader0

	// Fixed social fabric: who *can* email whom at baseline. Every
	// employee reports to a VP; peers within a department chat; traders
	// chat among themselves; legal talks to VPs; assistants talk to the
	// CEOs and VPs.
	type pair struct {
		a, b     int
		backbone bool // reporting/coordination edge; never intermittent
	}
	var fabric []pair
	deptOf := make([]int, NumEmployees)
	for e := 0; e < numEmp; e++ {
		v := vp0 + e%numVPs
		deptOf[emp0+e] = e % numVPs
		fabric = append(fabric, pair{a: emp0 + e, b: v, backbone: true})
	}
	for e := 0; e < numEmp; e++ {
		// A few fixed intra-department friendships.
		for k := 0; k < 2; k++ {
			f := rng.Intn(numEmp)
			if f != e && deptOf[emp0+f] == deptOf[emp0+e] {
				fabric = append(fabric, pair{a: emp0 + e, b: emp0 + f})
			}
		}
	}
	for a := 0; a < numTraders; a++ {
		for k := 0; k < 3; k++ {
			b := rng.Intn(numTraders)
			if b != a {
				fabric = append(fabric, pair{a: trader0 + a, b: trader0 + b})
			}
		}
	}
	for l := 0; l < numLegal; l++ {
		fabric = append(fabric, pair{a: legal0 + l, b: vp0 + l%numVPs, backbone: true})
		if l > 0 {
			fabric = append(fabric, pair{a: legal0 + l, b: legal0 + l - 1})
		}
	}
	for v := 0; v < numVPs; v++ {
		fabric = append(fabric, pair{a: vp0 + v, b: d.CEO, backbone: true})
		if v > 0 {
			fabric = append(fabric, pair{a: vp0 + v, b: vp0 + v - 1})
		}
	}
	fabric = append(fabric,
		pair{a: d.Assistant, b: d.CEO, backbone: true},
		pair{a: d.Assistant + 1, b: d.CEO, backbone: true},
		pair{a: d.Assistant, b: vp0, backbone: true},
		pair{a: incoming, b: d.CEO, backbone: true},
		pair{a: incoming, b: vp0 + 2, backbone: true},
	)

	// Monthly traffic. Real organizational email is *persistent*: the
	// same pairs talk month after month with volumes that hold steady
	// around a pair-specific rate, drifting by an email or two. Each
	// fabric edge gets a fixed rate drawn once; its monthly weight is
	// rate ± {0,1} jitter. A small fraction of relationships are
	// "intermittent" and go dormant for stretches — the benign dynamics
	// (the toy example's S4/S5) a localizer must not confuse with
	// structural events.
	type channel struct {
		a, b         int
		rate         int
		intermittent bool
	}
	channels := make([]channel, 0, len(fabric))
	for _, p := range fabric {
		channels = append(channels, channel{
			a:            p.a,
			b:            p.b,
			rate:         2 + rng.Intn(5),
			intermittent: !p.backbone && rng.Float64() < 0.08,
		})
	}
	graphs := make([]*graph.Graph, months)
	dormant := make([]bool, len(channels))
	for t := 0; t < months; t++ {
		b := graph.NewBuilder(NumEmployees)
		b.SetLabels(d.Names)
		for ci, ch := range channels {
			if ch.intermittent && rng.Float64() < 0.1 {
				dormant[ci] = !dormant[ci]
			}
			if ch.intermittent && dormant[ci] {
				continue
			}
			v := ch.rate
			switch r := rng.Float64(); {
			case r < 0.2:
				v--
			case r > 0.8:
				v++
			}
			if v > 0 {
				b.AddEdge(ch.a, ch.b, float64(v))
			}
		}
		applyEvents(d, b, t, months, rng, trader0, legal0, vp0, emp0, numEmp, incoming)
		graphs[t] = b.MustBuild()
	}
	d.Seq = graph.MustSequence(graphs)
	return d
}

// applyEvents injects the scripted anomalies into month t's builder and
// records ground truth (once, at the month the event first manifests).
func applyEvents(d *Dataset, b *graph.Builder, t, months int, rng *xrand.Source,
	trader0, legal0, vp0, emp0, numEmp, incoming int) {

	record := func(tr int, nodes []int, structural bool, desc string) {
		for _, e := range d.Events {
			if e.Transition == tr && e.Description == desc {
				return
			}
		}
		d.Events = append(d.Events, Event{Transition: tr, Nodes: nodes, Structural: structural, Description: desc})
	}

	// Trader burst at month 13 (transition 12): d.BurstTrader contacts
	// 12 traders it never talks to, heavily.
	if t == 13 && months > 13 {
		for k := 1; k <= 12; k++ {
			b.SetEdge(d.BurstTrader, trader0+(k+10)%numTraders, float64(6+rng.Intn(6)))
		}
		record(12, []int{d.BurstTrader}, true, "trader burst (Chris Germany analog)")
	}

	// Assistant handoff at month 25 (transition 24): the assistant
	// starts coordinating with the incoming CEO's circle.
	if t == 25 && months > 25 {
		b.SetEdge(d.Assistant, incoming, 9)
		b.SetEdge(d.Assistant, vp0+2, 7)
		b.SetEdge(d.Assistant, vp0+3, 6)
		record(24, []int{d.Assistant}, true, "assistant handoff (Rosalie Fleming analog)")
	}

	// CEO broadcast at month 33 (transition 32): the returning CEO
	// emails ~25 employees across roles he has no edges to.
	if t == 33 && months > 33 {
		for k := 0; k < 15; k++ {
			b.SetEdge(d.CEO, emp0+(k*7)%numEmp, float64(4+rng.Intn(5)))
		}
		for k := 0; k < 5; k++ {
			b.SetEdge(d.CEO, trader0+(k*3)%numTraders, float64(4+rng.Intn(5)))
		}
		for k := 0; k < 5; k++ {
			b.SetEdge(d.CEO, legal0+(k*2)%numLegal, float64(4+rng.Intn(5)))
		}
		record(32, []int{d.CEO}, true, "CEO cross-role broadcast (Kenneth Lay analog)")
	}

	// VP volume anomaly at month 33 (transition 32): same contacts,
	// ~8× the volume. A *volume* event, not a structural one.
	if t == 33 && months > 33 {
		b.SetEdge(d.VolumeVP, d.CEO, 30)
		b.SetEdge(d.VolumeVP, vp0+1, 28)
		b.SetEdge(d.VolumeVP, legal0, 26)
		record(32, []int{d.VolumeVP}, false, "VP volume surge (James Steffes analog)")
	}

	// Acquisition clique months 35–38 (first manifests at transition 34).
	if t >= 35 && t <= 38 && months > 35 {
		members := []int{d.AcqExec, vp0 + 4, legal0 + 1, legal0 + 2, incoming}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.SetEdge(members[i], members[j], float64(8+rng.Intn(5)))
			}
		}
		record(34, members, true, "acquisition clique (David Delainey analog)")
	}

	// Bankruptcy churn months 36–39: legal/VP/trader relationships
	// rewire at random.
	if t >= 36 && t <= 39 && months > 36 {
		var touched []int
		for k := 0; k < 10; k++ {
			l := legal0 + rng.Intn(numLegal)
			v := vp0 + rng.Intn(numVPs)
			b.SetEdge(l, v, float64(5+rng.Intn(6)))
			touched = append(touched, l, v)
		}
		record(t-1, touched, true, "bankruptcy churn")
	}
}

// CalmTransitions returns the transition indices with no scripted
// event on either endpoint month — the periods where a detector should
// stay quiet.
func (d *Dataset) CalmTransitions() []int {
	hot := make(map[int]bool)
	for _, e := range d.Events {
		// An event at transition tr perturbs transitions tr (appearing)
		// and tr+1 (disappearing, for one-shot bursts).
		hot[e.Transition] = true
		hot[e.Transition+1] = true
	}
	var calm []int
	for t := 0; t < d.Seq.T()-1; t++ {
		if !hot[t] {
			calm = append(calm, t)
		}
	}
	return calm
}
