package enron

import (
	"testing"

	"dyngraph/internal/graph"
)

func TestGenerateShape(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if d.Seq.T() != 48 {
		t.Fatalf("T = %d, want 48", d.Seq.T())
	}
	if d.Seq.N() != NumEmployees {
		t.Fatalf("N = %d, want %d", d.Seq.N(), NumEmployees)
	}
	// The paper's corpus peaks near 300 edges per instance; the
	// surrogate should be in the same sparse regime.
	m := d.Seq.AvgEdges()
	if m < 150 || m > 500 {
		t.Fatalf("avg edges = %g, want a few hundred", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 9})
	b := Generate(Config{Seed: 9})
	for tt := 0; tt < 5; tt++ {
		if a.Seq.At(tt).NumEdges() != b.Seq.At(tt).NumEdges() {
			t.Fatal("same seed produced different corpora")
		}
	}
	c := Generate(Config{Seed: 10})
	if a.Seq.At(3).NumEdges() == c.Seq.At(3).NumEdges() &&
		a.Seq.At(7).NumEdges() == c.Seq.At(7).NumEdges() &&
		a.Seq.At(11).NumEdges() == c.Seq.At(11).NumEdges() {
		t.Fatal("different seeds suspiciously identical")
	}
}

func TestRolesAssigned(t *testing.T) {
	d := Generate(Config{Seed: 1})
	counts := make(map[Role]int)
	for _, r := range d.Roles {
		counts[r]++
	}
	if counts[RoleCEO] != 1 || counts[RoleIncomingCEO] != 1 {
		t.Fatalf("CEO counts wrong: %v", counts)
	}
	if counts[RoleVP] != numVPs || counts[RoleLegal] != numLegal || counts[RoleTrader] != numTraders {
		t.Fatalf("role counts wrong: %v", counts)
	}
	if d.Roles[d.CEO] != RoleCEO || d.Roles[d.VolumeVP] != RoleVP || d.Roles[d.BurstTrader] != RoleTrader {
		t.Fatal("protagonist roles wrong")
	}
}

func TestCEOBroadcastInjected(t *testing.T) {
	d := Generate(Config{Seed: 1})
	degAt := func(t int) int {
		idx, _ := d.Seq.At(t).Neighbors(d.CEO)
		return len(idx)
	}
	if degAt(33) < degAt(32)+15 {
		t.Fatalf("CEO degree should jump at month 33: %d → %d", degAt(32), degAt(33))
	}
	// One-shot: back to baseline the next month.
	if degAt(34) > degAt(32)+10 {
		t.Fatalf("CEO broadcast should not persist: deg(34) = %d", degAt(34))
	}
}

func TestVolumeVPKeepsContacts(t *testing.T) {
	// The Steffes analog multiplies volume on existing edges; its
	// neighbor *set* must overlap heavily between months 32 and 33.
	d := Generate(Config{Seed: 1})
	n32, _ := d.Seq.At(32).Neighbors(d.VolumeVP)
	n33, _ := d.Seq.At(33).Neighbors(d.VolumeVP)
	set := make(map[int]bool)
	for _, v := range n32 {
		set[v] = true
	}
	var overlap int
	for _, v := range n33 {
		if set[v] {
			overlap++
		}
	}
	if len(n33) == 0 || float64(overlap)/float64(len(n33)) < 0.5 {
		t.Fatalf("volume VP rewired contacts: overlap %d of %d", overlap, len(n33))
	}
	// But the volume must surge on the boosted contacts: the scripted
	// edge to the CEO jumps to 30 from a baseline rate of at most 7.
	if d.Seq.At(33).Weight(d.VolumeVP, d.CEO) < 4*d.Seq.At(32).Weight(d.VolumeVP, d.CEO) {
		t.Fatalf("volume surge missing: %g → %g",
			d.Seq.At(32).Weight(d.VolumeVP, d.CEO), d.Seq.At(33).Weight(d.VolumeVP, d.CEO))
	}
}

func TestEventsRecorded(t *testing.T) {
	d := Generate(Config{Seed: 1})
	if len(d.Events) < 5 {
		t.Fatalf("events = %d, want at least the five scripted kinds", len(d.Events))
	}
	var volumeSeen bool
	for _, e := range d.Events {
		if e.Transition < 0 || e.Transition >= d.Seq.T()-1 {
			t.Fatalf("event transition %d out of range", e.Transition)
		}
		if len(e.Nodes) == 0 {
			t.Fatal("event without nodes")
		}
		if !e.Structural {
			volumeSeen = true
		}
	}
	if !volumeSeen {
		t.Fatal("the volume-only event must be recorded as non-structural")
	}
}

func TestCalmTransitionsExcludeEvents(t *testing.T) {
	d := Generate(Config{Seed: 1})
	hot := make(map[int]bool)
	for _, e := range d.Events {
		hot[e.Transition] = true
		hot[e.Transition+1] = true
	}
	calm := d.CalmTransitions()
	if len(calm) == 0 {
		t.Fatal("no calm transitions")
	}
	for _, tr := range calm {
		if hot[tr] {
			t.Fatalf("calm transition %d overlaps an event", tr)
		}
	}
}

func TestShortCorpusHasNoOutOfRangeEvents(t *testing.T) {
	d := Generate(Config{Months: 10, Seed: 1})
	if d.Seq.T() != 10 {
		t.Fatalf("T = %d", d.Seq.T())
	}
	for _, e := range d.Events {
		if e.Transition >= 9 {
			t.Fatalf("event at transition %d beyond short corpus", e.Transition)
		}
	}
}

func TestGraphsAreValid(t *testing.T) {
	d := Generate(Config{Seed: 1})
	for tt := 0; tt < d.Seq.T(); tt++ {
		g := d.Seq.At(tt)
		for _, e := range g.Edges() {
			if e.W <= 0 {
				t.Fatalf("non-positive weight at t=%d", tt)
			}
		}
	}
	// Fixed vertex set across time, per the problem framework.
	var _ *graph.Sequence = d.Seq
}
