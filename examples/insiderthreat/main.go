// Insider-threat example: the paper's motivating application (§1).
//
// A simulated 151-employee organizational email network evolves over 48
// months with a scripted scandal timeline (see internal/enron for the
// event list). CAD localizes the employees whose *relationships*
// changed anomalously, and the program compares its timeline against
// the ACT baseline and the scripted ground truth — the Figure 7
// experiment as a runnable program.
//
//	go run ./examples/insiderthreat
package main

import (
	"fmt"
	"log"
	"strings"

	"dyngraph"
	"dyngraph/internal/enron"
)

func main() {
	data := enron.Generate(enron.Config{Seed: 1})
	fmt.Printf("simulated corpus: %d employees, %d monthly instances, %.0f edges/month\n\n",
		data.Seq.N(), data.Seq.T(), data.Seq.AvgEdges())

	det := dyngraph.NewDetector(dyngraph.Options{})
	res, err := det.Run(data.Seq)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.AutoThreshold(5) // the paper's l = 5

	actRes, err := dyngraph.RunACT(data.Seq, 3) // the paper's w = 3
	if err != nil {
		log.Fatal(err)
	}

	events := make(map[int][]string)
	for _, e := range data.Events {
		events[e.Transition] = append(events[e.Transition], e.Description)
	}

	fmt.Println("timeline (one row per month transition; bars count anomalous nodes):")
	fmt.Println("  tr  CAD            ACT-z   scripted event")
	for _, tr := range rep.Transitions {
		bar := strings.Repeat("█", min(len(tr.Nodes), 30))
		ev := strings.Join(events[tr.T], "; ")
		fmt.Printf("  %2d  %-13s  %.3f   %s\n", tr.T, fmt.Sprintf("%2d %s", len(tr.Nodes), bar), actRes.TransitionScores[tr.T], ev)
	}

	// Zoom into the CEO-broadcast transition (the Kenneth Lay analog).
	const broadcast = 32
	fmt.Printf("\ntop employees at transition %d (the CEO-return month):\n", broadcast)
	scores := res.NodeScores(broadcast)
	type ranked struct {
		who   int
		score float64
	}
	var rk []ranked
	for i, s := range scores {
		if s > 0 {
			rk = append(rk, ranked{i, s})
		}
	}
	for a := range rk { // selection sort is fine for a demo's top-5
		best := a
		for b := a + 1; b < len(rk); b++ {
			if rk[b].score > rk[best].score {
				best = b
			}
		}
		rk[a], rk[best] = rk[best], rk[a]
		if a == 4 {
			break
		}
	}
	for a := 0; a < 5 && a < len(rk); a++ {
		fmt.Printf("  #%d %-14s (%s)  ΔN = %.0f\n",
			a+1, data.Names[rk[a].who], data.Roles[rk[a].who], rk[a].score)
	}
	fmt.Printf("\nground truth: the broadcast was scripted on %q\n", data.Names[data.CEO])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
