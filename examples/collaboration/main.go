// Collaboration example: the paper's DBLP scenario (§4.2.2).
//
// A simulated co-authorship network evolves over six years with three
// scripted anomalies: an author who jumps research fields, an author
// who moves to an adjacent field, and a strong collaboration that gets
// severed. CAD must surface all three and rank the cross-field jump
// above the adjacent move.
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"dyngraph"
	"dyngraph/internal/dblp"
)

func main() {
	data := dblp.Generate(dblp.Config{Seed: 1})
	fmt.Printf("simulated co-authorship network: %d authors, %d yearly instances, %.0f edges/year\n\n",
		data.Seq.N(), data.Seq.T(), data.Seq.AvgEdges())

	det := dyngraph.NewDetector(dyngraph.Options{K: 50, Seed: 1})
	res, err := det.Run(data.Seq)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.AutoThreshold(20) // the paper's l = 20

	fmt.Println("scripted ground truth:")
	for _, e := range data.Events {
		fmt.Printf("  transition %d: %s (severity %d, authors %v)\n",
			e.Transition, e.Description, e.Severity, e.Nodes)
	}

	fmt.Println("\nCAD's highest-scoring edges per transition:")
	for _, tr := range res.Transitions {
		fmt.Printf("  transition %d:", tr.T)
		for i, e := range tr.Scores {
			if i >= 3 {
				break
			}
			fmt.Printf("  a%d–a%d (%.0f)", e.I, e.J, e.Score)
		}
		fmt.Println()
	}

	fmt.Println("\nanomalous authors at auto-δ:")
	for _, tr := range rep.Transitions {
		if !tr.Anomalous() {
			continue
		}
		fmt.Printf("  transition %d: %d authors\n", tr.T, len(tr.Nodes))
	}

	// Verify the anecdotes programmatically.
	scores0 := res.NodeScores(0)
	fmt.Printf("\ncross-field jumper a%d ΔN = %.0f, adjacent mover a%d ΔN = %.0f\n",
		data.FieldJumper, scores0[data.FieldJumper],
		data.AdjacentMover, scores0[data.AdjacentMover])
	if scores0[data.FieldJumper] > scores0[data.AdjacentMover] {
		fmt.Println("→ the cross-field jump out-scores the adjacent move, as the paper reports")
	}
}
