// Streaming example: the online mode sketched in the paper's §4.2.
//
// Graph instances arrive one at a time (here: months of a simulated
// organizational email network). After each arrival the detector
// re-selects its global threshold δ over the history seen so far and
// reports the newest transition's anomalies immediately — no batch
// pass, same per-instance asymptotic cost.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"strings"

	"dyngraph"
	"dyngraph/internal/enron"
)

func main() {
	data := enron.Generate(enron.Config{Seed: 1})
	events := make(map[int]string)
	for _, e := range data.Events {
		if events[e.Transition] != "" {
			events[e.Transition] += "; "
		}
		events[e.Transition] += e.Description
	}

	det := dyngraph.NewOnlineDetector(dyngraph.Options{}, 5)
	fmt.Println("streaming monthly instances (δ re-selected after each):")
	for t := 0; t < data.Seq.T(); t++ {
		rep, err := det.Push(data.Seq.At(t))
		if err != nil {
			log.Fatal(err)
		}
		if rep == nil {
			continue // first instance: nothing to compare yet
		}
		marker := ""
		if ev := events[rep.T]; ev != "" {
			marker = "  ← " + ev
		}
		bar := strings.Repeat("█", min(len(rep.Nodes), 30))
		fmt.Printf("  month %2d→%2d  δ=%8.1f  %2d anomalous %s%s\n",
			rep.T, rep.T+1, det.Delta(), len(rep.Nodes), bar, marker)
	}

	// After the stream, the re-thresholded history equals what a batch
	// run would have reported.
	final := det.Report()
	var flagged int
	for _, tr := range final.Transitions {
		if tr.Anomalous() {
			flagged++
		}
	}
	fmt.Printf("\nfinal view: %d of %d transitions anomalous at δ = %.1f\n",
		flagged, len(final.Transitions), final.Delta)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
