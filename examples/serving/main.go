// Serving example: drive the cadd streaming daemon programmatically
// through the exported client types.
//
// The example boots the serving layer in-process on a loopback port
// (exactly what `cadd -addr 127.0.0.1:0` does), then acts as a pure
// HTTP client: create a detection stream, replay the simulated Enron
// months as snapshot POSTs with explicit backpressure, and read the
// scandal transitions back out of /report.
//
//	go run ./examples/serving
//
// Against a separately started daemon, replace the boot block with
// dyngraph.NewStreamClient("http://localhost:8470", nil).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"dyngraph"
	"dyngraph/internal/enron"
	"dyngraph/internal/service"
)

func main() {
	// Boot the serving layer on a loopback port.
	srv := service.New(service.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
	}()

	// Everything below is plain client-side code.
	ctx := context.Background()
	cl := dyngraph.NewStreamClient("http://"+ln.Addr().String(), nil)
	if err := cl.Health(ctx); err != nil {
		log.Fatal(err)
	}

	// One stream per monitored network; this one watches the simulated
	// Enron organization with a budget of ~5 anomalous nodes per month
	// and a 36-month sliding history window.
	if err := cl.CreateStream(ctx, "enron", dyngraph.StreamConfig{L: 5, Seed: 1, MaxHistory: 36}); err != nil {
		log.Fatal(err)
	}

	data := enron.Generate(enron.Config{Seed: 1})
	events := make(map[int]string)
	for _, e := range data.Events {
		if events[e.Transition] != "" {
			events[e.Transition] += "; "
		}
		events[e.Transition] += e.Description
	}

	fmt.Println("replaying monthly snapshots over HTTP (sync, with 429 backoff):")
	for t := 0; t < data.Seq.T(); t++ {
		var res dyngraph.StreamPushResult
		for {
			res, err = cl.Push(ctx, "enron", data.Seq.At(t), true)
			if errors.Is(err, dyngraph.ErrStreamQueueFull) {
				time.Sleep(50 * time.Millisecond) // explicit backpressure
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			break
		}
		if res.Report != nil && len(res.Report.Nodes) > 0 {
			marker := ""
			if ev := events[res.Report.Transition]; ev != "" {
				marker = "  ← " + ev
			}
			fmt.Printf("  month %2d→%2d  δ=%8.1f  %2d anomalous nodes%s\n",
				res.Report.Transition, res.Report.Transition+1, res.Delta, len(res.Report.Nodes), marker)
		}
	}

	// The served report is byte-identical to `cadrun -json` on the
	// same data; here we read the typed form and pull out the scandal.
	rep, err := cl.Report(ctx, "enron")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal served view at δ = %.1f:\n", rep.Delta)
	for _, tr := range rep.Transitions {
		if len(tr.Nodes) == 0 {
			continue
		}
		names := make([]string, 0, len(tr.Nodes))
		for _, n := range tr.Nodes {
			names = append(names, data.Names[n])
		}
		fmt.Printf("  transition %2d: %v\n", tr.Transition, names)
	}

	info, err := cl.StreamInfo(ctx, "enron")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstream status: ingested=%d processed=%d rejected=%d evicted=%d\n",
		info.Ingested, info.Processed, info.Rejected, info.Evicted)
}
