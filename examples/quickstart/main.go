// Quickstart: build a tiny two-instance graph sequence, run CAD, and
// print the localized anomalies.
//
// The scenario is the paper's motivating one in miniature: two
// well-connected communities, one benign weight fluctuation inside a
// community, and one brand-new edge bridging the communities. CAD must
// flag the bridge and ignore the fluctuation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dyngraph"
)

func main() {
	const n = 10
	labels := []string{"ann", "bob", "cat", "dan", "eve", "fay", "gil", "hal", "ivy", "joe"}

	build := func(bridged bool) *dyngraph.Graph {
		b := dyngraph.NewGraphBuilder(n)
		b.SetLabels(labels)
		// Community 1: ann..eve, community 2: fay..joe, each a clique.
		for c := 0; c < 2; c++ {
			base := c * 5
			for i := 0; i < 5; i++ {
				for j := i + 1; j < 5; j++ {
					b.SetEdge(base+i, base+j, 2)
				}
			}
		}
		b.SetEdge(4, 5, 0.3) // eve–fay: a permanent weak inter-community tie
		if bridged {
			b.SetEdge(1, 8, 3)   // bob–ivy: NEW cross-community edge (anomalous)
			b.SetEdge(0, 2, 2.4) // ann–cat: small benign weight bump
		}
		g, err := b.Build()
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	seq, err := dyngraph.NewSequence([]*dyngraph.Graph{build(false), build(true)})
	if err != nil {
		log.Fatal(err)
	}

	det := dyngraph.NewDetector(dyngraph.Options{}) // CAD with defaults
	res, err := det.Run(seq)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("all edge scores for the transition (descending):")
	for _, s := range res.Transitions[0].Scores {
		fmt.Printf("  %s–%s  ΔE = %.2f\n", labels[s.I], labels[s.J], s.Score)
	}

	rep := res.AutoThreshold(2) // ask for ~2 anomalous nodes
	fmt.Printf("\nanomalies at auto-selected δ = %.2f:\n", rep.Delta)
	for _, tr := range rep.Transitions {
		for _, e := range tr.Edges {
			fmt.Printf("  transition %d: %s–%s (ΔE = %.2f)\n", tr.T, labels[e.I], labels[e.J], e.Score)
		}
	}
}
