// Climate example: the paper's precipitation-teleconnection scenario
// (§4.2.3, Figures 9 and 10).
//
// A simulated global precipitation grid evolves over 21 Januaries.
// In one year a La Niña-style teleconnection simultaneously (but
// subtly) shifts rainfall in four distant regions. Each year's graph
// connects climatically similar locations (10-NN in precipitation
// value, Gaussian similarity weights); CAD must flag the event year and
// localize the edges between shifted and reference regions.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"

	"dyngraph"
	"dyngraph/internal/precip"
)

func main() {
	data := precip.Generate(precip.Config{Seed: 1})
	fmt.Printf("simulated grid: %d land cells, %d years, event at transition %d\n\n",
		data.Seq.N(), data.Seq.T(), data.EventTransition)

	det := dyngraph.NewDetector(dyngraph.Options{K: 50, Seed: 1})
	res, err := det.Run(data.Seq)
	if err != nil {
		log.Fatal(err)
	}
	rep := res.AutoThreshold(30) // the paper's l = 30

	fmt.Println("anomalous cells per transition (the event should dominate):")
	for _, tr := range rep.Transitions {
		marker := ""
		if tr.T == data.EventTransition {
			marker = "  ← teleconnection event"
		}
		fmt.Printf("  transition %2d: %3d cells%s\n", tr.T, len(tr.Nodes), marker)
	}

	ev := data.EventTransition
	fmt.Println("\ntop anomalous edges at the event transition (region pairs):")
	for i, e := range res.Transitions[ev].Scores {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-16s – %-16s  ΔE = %.3g\n", data.Region[e.I], data.Region[e.J], e.Score)
	}

	// Quantify localization quality against the scripted regions.
	auc, err := dyngraph.AUC(res.NodeScores(ev), data.EventNodeLabels())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode-level AUC against the shifted-region ground truth: %.3f\n", auc)

	// The Figure 10 point: the event is modest in any single region's
	// mean-rainfall series, yet CAD pinpoints it because the shifts are
	// simultaneous.
	fmt.Println("\nregional mean rainfall (year before → event year → year after):")
	means := data.RegionMeans()
	eventYear := data.Config.EventYear
	for reg := precip.RegionSouthernAfrica; reg <= precip.RegionAmazon; reg++ {
		series := means[reg]
		fmt.Printf("  %-16s %.2f → %.2f → %.2f\n", reg, series[eventYear-1], series[eventYear], series[eventYear+1])
	}
}
