package main

import (
	"bytes"
	"strings"
	"testing"

	"dyngraph/internal/graph"
)

func TestDatagenToyToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-dataset", "toy"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	seq, err := graph.ReadSequence(&out)
	if err != nil {
		t.Fatalf("output not parseable: %v", err)
	}
	if seq.N() != 17 || seq.T() != 2 {
		t.Fatalf("toy shape: n=%d T=%d", seq.N(), seq.T())
	}
}

func TestDatagenGMMWithSize(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-dataset", "gmm", "-n", "40", "-seed", "3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	seq, err := graph.ReadSequence(&out)
	if err != nil {
		t.Fatal(err)
	}
	if seq.N() != 40 {
		t.Fatalf("n = %d", seq.N())
	}
}

func TestDatagenUnknownDataset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-dataset", "bogus"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "unknown dataset") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestDatagenMissingDataset(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain(nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestDatagenToFile(t *testing.T) {
	path := t.TempDir() + "/seq.txt"
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-dataset", "toy", "-out", path}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if out.Len() != 0 {
		t.Fatal("file mode wrote to stdout")
	}
}
