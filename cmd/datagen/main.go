// Command datagen materializes the repository's synthetic datasets to
// disk in the edge-list format cadrun consumes.
//
// Usage:
//
//	datagen -dataset toy|gmm|random|grow|enron|dblp|precip -out file.txt [flags]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dyngraph/internal/datagen"
	"dyngraph/internal/dblp"
	"dyngraph/internal/enron"
	"dyngraph/internal/graph"
	"dyngraph/internal/precip"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is the program behind the flag plumbing, factored out for
// end-to-end tests with in-memory streams.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset = fs.String("dataset", "", "toy, gmm, random, grow, enron, dblp or precip (required)")
		out     = fs.String("out", "-", "output file ('-' for stdout)")
		n       = fs.Int("n", 0, "size override where applicable (gmm points, random/grow initial vertices, dblp authors)")
		seed    = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var seq *graph.Sequence
	switch *dataset {
	case "toy":
		seq = datagen.Toy()
	case "gmm":
		inst := datagen.GMM(datagen.GMMConfig{N: *n, Seed: *seed})
		seq = inst.Seq
	case "random":
		size := *n
		if size == 0 {
			size = 10000
		}
		seq = datagen.RandomSequence(datagen.RandomConfig{N: size, Seed: *seed})
	case "grow":
		seq = datagen.GrowSequence(datagen.GrowConfig{N0: *n, Seed: *seed})
	case "enron":
		seq = enron.Generate(enron.Config{Seed: *seed}).Seq
	case "dblp":
		seq = dblp.Generate(dblp.Config{Authors: *n, Seed: *seed}).Seq
	case "precip":
		seq = precip.Generate(precip.Config{Seed: *seed}).Seq
	default:
		fmt.Fprintf(stderr, "datagen: unknown dataset %q\n", *dataset)
		fs.Usage()
		return 2
	}

	dst := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "datagen:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "datagen:", err)
			}
		}()
		dst = f
	}
	if err := graph.WriteSequence(dst, seq); err != nil {
		fmt.Fprintln(stderr, "datagen:", err)
		return 1
	}
	return 0
}
