package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// nodeStatusz is a canned single-node /statusz document exercising every
// section cadtop renders.
const nodeStatusz = `{
  "status": "ok",
  "node": "cadd-a",
  "version": "v1.2.3",
  "go_version": "go1.22.0",
  "uptime_seconds": 3723,
  "streams": {"total": 2, "resident": 1, "hibernated": 1},
  "memory": {"resident_bytes": 1048576, "budget_bytes": 2097152},
  "ingest": {"ingested": 10, "processed": 9, "rejected": 1, "push_errors": 0, "slow_pushes": 2},
  "runtime": {"goroutines": 12, "heap_alloc_bytes": 524288, "gc_cycles": 3,
              "last_gc_pause_seconds": 0.0001, "sched_latency_p99_seconds": 0.00005},
  "replication": {"target": "http://standby:8080", "lag_records": 4, "shipped": 100, "dropped": 0},
  "slo": {"prices": {"objective_seconds": 0.25,
          "burn_rates": [{"window": "5m0s", "total": 9, "slow": 0, "burn_rate": 0},
                         {"window": "1h0m0s", "total": 9, "slow": 0, "burn_rate": 0}]}},
  "push_latency": {"prices": {"samples": 9, "p50_seconds": 0.002, "p99_seconds": 0.017}},
  "slowest_pushes": [{"stream": "prices", "trace_id": "deadbeefdeadbeefdeadbeefdeadbeef", "seconds": 0.017}]
}`

// routerStatusz is a canned router document with one live node, one
// unreachable node and peer health.
const routerStatusz = `{
  "status": "ok",
  "role": "router",
  "version": "v1.2.3",
  "go_version": "go1.22.0",
  "uptime_seconds": 60,
  "peers": {"cadd-a": true, "cadd-b": false},
  "nodes": {
    "cadd-a": ` + nodeStatusz + `,
    "cadd-b": {"status": "unreachable"}
  }
}`

// metricsBody builds a /metrics exposition whose processed counter can
// advance between polls to drive the rate views.
func metricsBody(processed int) string {
	return fmt.Sprintf(`# HELP cadd_snapshots_processed_total Snapshots fully processed.
# TYPE cadd_snapshots_processed_total counter
cadd_snapshots_processed_total{stream="prices"} %d
cadd_snapshots_processed_total{stream="trades"} 1
`, processed)
}

// statuszServer serves canned /statusz and /metrics, bumping the
// processed counter on every metrics scrape so deltas are non-zero.
func statuszServer(t *testing.T, statusz string) *httptest.Server {
	t.Helper()
	var scrapes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, statusz)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, metricsBody(int(5+10*scrapes.Add(1))))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestCadtopNodeFrame(t *testing.T) {
	srv := statuszServer(t, nodeStatusz)
	var out, errs strings.Builder
	code := realMain([]string{"-addr", srv.URL, "-frames", "3", "-interval", "10ms", "-plain"}, &out, &errs)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	got := out.String()
	for _, want := range []string{
		"node cadd-a",
		"cadd v1.2.3 go1.22.0",
		"up 1h2m",
		"streams   total 2   resident 1   hibernated 1",
		"budget 2.0MiB (50%)",
		"processed 9   rejected 1",
		"goroutines 12",
		"replicate → http://standby:8080   lag 4",
		"throughput (pushes/s",
		"per-stream pushes/s",
		"prices",
		"trades",
		"burn rates",
		"5m0s 0.0x",
		"slowest recent pushes",
		"trace deadbeefdeadbeefdeadbeefdeadbeef",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q\n--- output ---\n%s", want, got)
		}
	}
	if n := strings.Count(got, "cadtop — "); n != 3 {
		t.Errorf("rendered %d frames, want 3", n)
	}
	if strings.Contains(got, "\x1b[") {
		t.Errorf("-plain output contains ANSI escapes")
	}
}

func TestCadtopRouterFrame(t *testing.T) {
	srv := statuszServer(t, routerStatusz)
	var out, errs strings.Builder
	code := realMain([]string{"-addr", srv.URL, "-frames", "1", "-plain"}, &out, &errs)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	got := out.String()
	for _, want := range []string{
		"(router)",
		"node        health  streams   resident  processed  repl lag",
		"cadd-a      ok",
		"UNREACHABLE",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("router frame missing %q\n--- output ---\n%s", want, got)
		}
	}
	// cadd-b is marked unhealthy in peers and unreachable in nodes.
	if !strings.Contains(got, "cadd-b      UNREACHABLE") {
		t.Errorf("cadd-b not shown unreachable\n%s", got)
	}
}

func TestCadtopUnreachableTarget(t *testing.T) {
	var out, errs strings.Builder
	code := realMain([]string{"-addr", "http://127.0.0.1:1", "-frames", "1"}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errs.String(), "cadtop:") {
		t.Errorf("stderr missing error prefix: %s", errs.String())
	}
}
