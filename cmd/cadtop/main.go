// Command cadtop is a polling terminal dashboard over a running cadd
// node or cluster router — `top` for the anomaly-localization service.
// It reads the /statusz JSON snapshot and the Prometheus /metrics
// exposition each interval and renders build identity, stream census,
// memory residency, ingest throughput (with a live rate sparkline),
// per-stream push-latency percentiles, SLO burn rates, the slowest
// recent pushes (with their trace ids, ready to paste into
// /debug/traces?trace=), runtime health from the Go sampler, and — when
// pointed at a router — the per-node breakdown of the whole cluster.
//
// Usage:
//
//	cadtop -addr http://localhost:8080              # single node
//	cadtop -addr http://localhost:9090 -interval 5s # cluster router
//	cadtop -addr http://localhost:8080 -frames 1 -plain  # one-shot, scriptable
//
// With -frames N it renders N frames and exits (0 = run until
// interrupted); -plain suppresses the ANSI clear-screen between frames
// so output can be piped or captured in tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dyngraph/internal/asciiplot"
	"dyngraph/internal/promtext"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8080", "base URL of a cadd node or cluster router")
	interval := fs.Duration("interval", 2*time.Second, "polling interval")
	frames := fs.Int("frames", 0, "render this many frames then exit (0 = until interrupted)")
	plain := fs.Bool("plain", false, "no ANSI clear between frames (pipe/test friendly)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}

	var prev *sample
	var rates []float64 // total processed-rate history for the sparkline
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		cur, err := poll(client, base)
		if err != nil {
			fmt.Fprintln(stderr, "cadtop:", err)
			return 1
		}
		if prev != nil {
			dt := cur.at.Sub(prev.at).Seconds()
			if dt > 0 {
				rates = append(rates, (cur.totalProcessed()-prev.totalProcessed())/dt)
				if len(rates) > sparklinePoints {
					rates = rates[len(rates)-sparklinePoints:]
				}
			}
		}
		if !*plain {
			fmt.Fprint(stdout, "\x1b[2J\x1b[H")
		}
		fmt.Fprint(stdout, render(base, cur, prev, rates))
		prev = cur
	}
	return 0
}

// sparklinePoints bounds the throughput history fed to the rate chart.
const sparklinePoints = 60

// sample is one poll of a node or router: its /statusz document, parsed
// /metrics samples, and when they were taken.
type sample struct {
	at      time.Time
	status  statusDoc
	metrics []promtext.Sample
}

// statusDoc mirrors the subset of /statusz cadtop renders. Node and
// router documents share the envelope; router adds role/peers/nodes,
// nodes add slo/push_latency/runtime/replication.
type statusDoc struct {
	Status        string  `json:"status"`
	Role          string  `json:"role"`
	Node          string  `json:"node"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Streams       *struct {
		Total      int `json:"total"`
		Resident   int `json:"resident"`
		Hibernated int `json:"hibernated"`
	} `json:"streams"`
	Memory *struct {
		ResidentBytes int64 `json:"resident_bytes"`
		BudgetBytes   int64 `json:"budget_bytes"`
	} `json:"memory"`
	Ingest *struct {
		Ingested   int64 `json:"ingested"`
		Processed  int64 `json:"processed"`
		Rejected   int64 `json:"rejected"`
		PushErrors int64 `json:"push_errors"`
		SlowPushes int64 `json:"slow_pushes"`
	} `json:"ingest"`
	SLO map[string]struct {
		ObjectiveSeconds float64 `json:"objective_seconds"`
		BurnRates        []struct {
			Window string  `json:"window"`
			Total  int64   `json:"total"`
			Slow   int64   `json:"slow"`
			Rate   float64 `json:"burn_rate"`
		} `json:"burn_rates"`
	} `json:"slo"`
	PushLatency map[string]struct {
		Samples    int     `json:"samples"`
		P50Seconds float64 `json:"p50_seconds"`
		P99Seconds float64 `json:"p99_seconds"`
	} `json:"push_latency"`
	SlowestPushes []struct {
		Stream  string  `json:"stream"`
		TraceID string  `json:"trace_id"`
		Seconds float64 `json:"seconds"`
	} `json:"slowest_pushes"`
	Runtime *struct {
		Goroutines          int     `json:"goroutines"`
		HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
		HeapObjects         uint64  `json:"heap_objects"`
		GCCycles            uint32  `json:"gc_cycles"`
		LastGCPauseSeconds  float64 `json:"last_gc_pause_seconds"`
		SchedLatencyP99     float64 `json:"sched_latency_p99_seconds"`
		GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
	} `json:"runtime"`
	Replication *struct {
		Target      string `json:"target"`
		LagRecords  int64  `json:"lag_records"`
		Shipped     int64  `json:"shipped"`
		Dropped     int64  `json:"dropped"`
		LostStreams int64  `json:"lost_streams"`
	} `json:"replication"`
	Peers map[string]bool            `json:"peers"`
	Nodes map[string]json.RawMessage `json:"nodes"`
}

// poll fetches and parses one /statusz + /metrics pair.
func poll(client *http.Client, base string) (*sample, error) {
	s := &sample{at: time.Now()}
	raw, err := get(client, base+"/statusz")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(raw, &s.status); err != nil {
		return nil, fmt.Errorf("/statusz: %w", err)
	}
	body, err := get(client, base+"/metrics")
	if err != nil {
		return nil, err
	}
	if s.metrics, err = promtext.Parse(string(body)); err != nil {
		return nil, fmt.Errorf("/metrics: %w", err)
	}
	return s, nil
}

func get(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return body, nil
}

// totalProcessed sums cadd_snapshots_processed_total across all streams
// (and, behind a router, all instances) — the dashboard's throughput
// numerator.
func (s *sample) totalProcessed() float64 {
	var total float64
	for _, m := range s.metrics {
		if m.Name == "cadd_snapshots_processed_total" {
			total += m.Value
		}
	}
	return total
}

// processedByStream splits the processed counter per stream label.
func (s *sample) processedByStream() map[string]float64 {
	out := map[string]float64{}
	for _, m := range s.metrics {
		if m.Name == "cadd_snapshots_processed_total" {
			out[m.Label("stream")] += m.Value
		}
	}
	return out
}

// render draws one frame. prev may be nil (first frame: no rates yet).
func render(base string, cur, prev *sample, rates []float64) string {
	var b strings.Builder
	st := &cur.status
	title := "node"
	if st.Role == "router" {
		title = "router"
	} else if st.Node != "" {
		title = "node " + st.Node
	}
	fmt.Fprintf(&b, "cadtop — %s (%s)  cadd %s %s  up %s  status %s\n",
		base, title, st.Version, st.GoVersion, formatDuration(st.UptimeSeconds), st.Status)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("─", 72))

	if st.Streams != nil {
		fmt.Fprintf(&b, "streams   total %d   resident %d   hibernated %d\n",
			st.Streams.Total, st.Streams.Resident, st.Streams.Hibernated)
	}
	if st.Memory != nil {
		line := fmt.Sprintf("memory    resident %s", formatBytes(st.Memory.ResidentBytes))
		if st.Memory.BudgetBytes > 0 {
			line += fmt.Sprintf("   budget %s (%.0f%%)", formatBytes(st.Memory.BudgetBytes),
				100*float64(st.Memory.ResidentBytes)/float64(st.Memory.BudgetBytes))
		}
		b.WriteString(line + "\n")
	}
	if st.Ingest != nil {
		fmt.Fprintf(&b, "ingest    processed %d   rejected %d   errors %d   slow %d\n",
			st.Ingest.Processed, st.Ingest.Rejected, st.Ingest.PushErrors, st.Ingest.SlowPushes)
	}
	if st.Runtime != nil {
		fmt.Fprintf(&b, "runtime   goroutines %d   heap %s   gc %d (last pause %s, sched p99 %s)\n",
			st.Runtime.Goroutines, formatBytes(int64(st.Runtime.HeapAllocBytes)),
			st.Runtime.GCCycles, formatSeconds(st.Runtime.LastGCPauseSeconds),
			formatSeconds(st.Runtime.SchedLatencyP99))
	}
	if st.Replication != nil && st.Replication.Target != "" {
		fmt.Fprintf(&b, "replicate → %s   lag %d   shipped %d   dropped %d\n",
			st.Replication.Target, st.Replication.LagRecords,
			st.Replication.Shipped, st.Replication.Dropped)
	}

	b.WriteString(renderRates(rates))
	b.WriteString(renderStreams(cur, prev))
	b.WriteString(renderSLO(st))
	b.WriteString(renderSlowest(st))
	b.WriteString(renderCluster(st))
	return b.String()
}

// renderRates draws the total-throughput sparkline once two polls exist.
func renderRates(rates []float64) string {
	if len(rates) < 2 {
		return ""
	}
	xs := make([]float64, len(rates))
	for i := range xs {
		xs[i] = float64(i)
	}
	chart, err := asciiplot.Lines([]asciiplot.Series{{Name: "pushes/s", X: xs, Y: rates}}, 60, 6)
	if err != nil {
		return ""
	}
	return "\nthroughput (pushes/s, last " + fmt.Sprint(len(rates)) + " polls)\n" + chart
}

// renderStreams shows per-stream throughput (bar row of deltas against
// the previous poll) — the "who is hot right now" view.
func renderStreams(cur, prev *sample) string {
	if prev == nil {
		return ""
	}
	dt := cur.at.Sub(prev.at).Seconds()
	if dt <= 0 {
		return ""
	}
	before, now := prev.processedByStream(), cur.processedByStream()
	var names []string
	for name := range now {
		names = append(names, name)
	}
	sort.Strings(names)
	var labels []string
	var values []float64
	for _, name := range names {
		labels = append(labels, clip(name, 12))
		values = append(values, (now[name]-before[name])/dt)
	}
	if len(labels) == 0 {
		return ""
	}
	bars, err := asciiplot.Bars(labels, values, 40)
	if err != nil {
		return ""
	}
	return "\nper-stream pushes/s\n" + bars
}

// renderSLO tabulates each stream's objective, recent percentiles and
// multi-window burn rates. A burn rate above 1 is eating error budget.
func renderSLO(st *statusDoc) string {
	if len(st.SLO) == 0 && len(st.PushLatency) == 0 {
		return ""
	}
	seen := map[string]bool{}
	var names []string
	for name := range st.SLO {
		seen[name] = true
		names = append(names, name)
	}
	for name := range st.PushLatency {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("\nstream          objective       p50       p99   burn rates\n")
	for _, name := range names {
		obj, burns := "      -", "-"
		if s, ok := st.SLO[name]; ok {
			obj = formatSeconds(s.ObjectiveSeconds)
			var parts []string
			for _, br := range s.BurnRates {
				parts = append(parts, fmt.Sprintf("%s %.1fx", br.Window, br.Rate))
			}
			if len(parts) > 0 {
				burns = strings.Join(parts, "  ")
			}
		}
		p50, p99 := "      -", "      -"
		if l, ok := st.PushLatency[name]; ok {
			p50, p99 = formatSeconds(l.P50Seconds), formatSeconds(l.P99Seconds)
		}
		fmt.Fprintf(&b, "%-15s %9s %9s %9s   %s\n", clip(name, 15), obj, p50, p99, burns)
	}
	return b.String()
}

// renderSlowest lists the node's slowest recent pushes with their trace
// ids — each pastes straight into /debug/traces?trace=<id>.
func renderSlowest(st *statusDoc) string {
	if len(st.SlowestPushes) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("\nslowest recent pushes\n")
	for _, sp := range st.SlowestPushes {
		fmt.Fprintf(&b, "  %9s  %-15s  trace %s\n",
			formatSeconds(sp.Seconds), clip(sp.Stream, 15), sp.TraceID)
	}
	return b.String()
}

// renderCluster, on a router document, summarizes every node: health,
// census, residency, throughput and replication lag.
func renderCluster(st *statusDoc) string {
	if st.Role != "router" {
		return ""
	}
	var ids []string
	for id := range st.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	b.WriteString("\nnode        health  streams   resident  processed  repl lag\n")
	for _, id := range ids {
		var nd statusDoc
		if err := json.Unmarshal(st.Nodes[id], &nd); err != nil || nd.Status != "ok" {
			fmt.Fprintf(&b, "%-11s %s\n", clip(id, 11), "UNREACHABLE")
			continue
		}
		health := "ok"
		if up, known := st.Peers[id]; known && !up {
			health = "down"
		}
		streams, resident, processed, lag := "-", "-", "-", "-"
		if nd.Streams != nil {
			streams = fmt.Sprint(nd.Streams.Total)
		}
		if nd.Memory != nil {
			resident = formatBytes(nd.Memory.ResidentBytes)
		}
		if nd.Ingest != nil {
			processed = fmt.Sprint(nd.Ingest.Processed)
		}
		if nd.Replication != nil {
			lag = fmt.Sprint(nd.Replication.LagRecords)
		}
		fmt.Fprintf(&b, "%-11s %-7s %7s %10s %10s %9s\n",
			clip(id, 11), health, streams, resident, processed, lag)
	}
	return b.String()
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func formatDuration(seconds float64) string {
	d := time.Duration(seconds * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}

func formatSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
