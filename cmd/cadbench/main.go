// Command cadbench regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	cadbench -exp table1|table2|fig2|fig3|fig4|fig5|fig6|verbatim|scale|
//	              stream|block|incremental|hibernate|cluster|ablation|distance|enron|dblp|precip|all [flags]
//
// The quantitative experiments accept -n, -trials, -k and -seed so you
// can trade fidelity against runtime; the defaults are sized to finish
// in minutes on a laptop, and the paper-scale settings are reachable by
// flag (e.g. -exp fig6 -n 2000 -trials 100).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"runtime/pprof"

	"dyngraph/internal/asciiplot"
	"dyngraph/internal/datagen"
	"dyngraph/internal/experiments"
	"dyngraph/internal/obs"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// benchConfig carries the parsed flags into run.
type benchConfig struct {
	n, trials, k  int
	streams       int
	seed          int64
	sizes, family string
	detail, plot  bool
	benchout      string
	traceOut      string
	out           io.Writer
}

// realMain is the program behind the flag plumbing, factored out for
// end-to-end tests with in-memory streams.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id: table1, table2, fig2, fig3, fig4, fig5, fig6, verbatim, scale, stream, block, incremental, hibernate, cluster, ablation, distance, enron, dblp, precip, or all")
		n        = fs.Int("n", 500, "synthetic GMM size for fig5/fig6 (paper: 2000)")
		trials   = fs.Int("trials", 10, "realizations to average for fig5/fig6 (paper: 100)")
		k        = fs.Int("k", 50, "commute-embedding dimension")
		seed     = fs.Int64("seed", 1, "master random seed")
		sizes    = fs.String("sizes", "", "comma-separated n values for -exp scale (default 1000,5000,20000,50000)")
		detail   = fs.Bool("detail", false, "print per-transition / per-year detail tables")
		family   = fs.String("family", "uniform", "graph family for -exp scale: uniform, preferential or smallworld")
		plot     = fs.Bool("plot", false, "render ASCII charts alongside the tables (fig6 ROC, enron timeline)")
		streams  = fs.Int("streams", 0, "stream count for -exp hibernate/cluster (0 = the experiment default)")
		benchout = fs.String("benchout", "", "write -exp stream/block/incremental/hibernate/cluster results as JSON to this file (e.g. BENCH_stream.json)")
		traceOut = fs.String("trace-out", "", "write -exp stream/incremental per-push pipeline traces to this file as Chrome trace_event JSON")
		cpuprof  = fs.String("cpuprofile", "", "write a pprof CPU profile of the experiment run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fmt.Fprintf(stderr, "cadbench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "cadbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "verbatim", "scale", "ablation", "distance", "enron", "dblp", "precip"}
	}
	cfg := benchConfig{
		n: *n, trials: *trials, k: *k, streams: *streams, seed: *seed,
		sizes: *sizes, family: *family, detail: *detail, plot: *plot,
		benchout: *benchout, traceOut: *traceOut, out: stdout,
	}
	for _, id := range ids {
		if err := run(id, cfg); err != nil {
			fmt.Fprintf(stderr, "cadbench: %s: %v\n", id, err)
			return 1
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func run(id string, cfg benchConfig) error {
	n, trials, k, seed := cfg.n, cfg.trials, cfg.k, cfg.seed
	sizes, family, detail := cfg.sizes, cfg.family, cfg.detail
	switch id {
	case "table1":
		res, err := experiments.Table1()
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "table2":
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "fig2":
		res, err := experiments.Fig2()
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "fig3":
		res, err := experiments.Fig3()
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		cad, act := res.ResponsibleSeparation()
		fmt.Fprintf(cfg.out, "separation (min responsible / max other): CAD %.2f, ACT %.2f\n", cad, act)
		return nil
	case "fig4":
		res, err := experiments.Fig4(n, seed, 0)
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		if cfg.plot {
			xs := make([]float64, len(res.Inst.Points))
			ys := make([]float64, len(res.Inst.Points))
			for i, p := range res.Inst.Points {
				xs[i], ys[i] = p[0], p[1]
			}
			scatter, err := asciiplot.Scatter(xs, ys, res.Inst.Cluster, 64, 20)
			if err != nil {
				return err
			}
			fmt.Fprintln(cfg.out, "Figure 4a: mixture realization (marker = component):")
			fmt.Fprint(cfg.out, scatter)
			heat, err := asciiplot.Heatmap(res.Blocks)
			if err != nil {
				return err
			}
			fmt.Fprintln(cfg.out, "Figure 4b: cluster-ordered adjacency (block structure):")
			fmt.Fprint(cfg.out, heat)
		}
		return nil
	case "fig5":
		res, err := experiments.Fig5(experiments.SyntheticConfig{N: n, Trials: trials, K: k, Seed: seed}, nil)
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "fig6":
		res, err := experiments.Fig6(experiments.SyntheticConfig{N: n, Trials: trials, K: k, Seed: seed})
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		if cfg.plot {
			var series []asciiplot.Series
			for _, m := range experiments.Methods() {
				s := asciiplot.Series{Name: m}
				for _, p := range res.Curves[m] {
					s.X = append(s.X, p.FPR)
					s.Y = append(s.Y, p.TPR)
				}
				series = append(series, s)
			}
			chart, err := asciiplot.Lines(series, 64, 18)
			if err != nil {
				return err
			}
			fmt.Fprintln(cfg.out, chart)
		}
		return nil
	case "verbatim":
		res, err := experiments.Fig6Verbatim(experiments.SyntheticConfig{N: n, Trials: trials, K: k, Seed: seed})
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "ablation":
		res, err := experiments.Ablation(experiments.AblationConfig{Seed: seed})
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "distance":
		res, err := experiments.DistanceAblation(experiments.SyntheticConfig{N: n, Trials: trials, Seed: seed})
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "scale":
		fam, err := datagen.ParseFamily(family)
		if err != nil {
			return err
		}
		scfg := experiments.ScaleConfig{K: 10, Seed: seed, Family: fam}
		if scfg.Sizes, err = parseSizes(sizes); err != nil {
			return err
		}
		res, err := experiments.Scale(scfg)
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		// The paper's CLC stress case: m = 10n.
		scfg.EdgesPerNode = 10
		if len(scfg.Sizes) > 2 {
			scfg.Sizes = scfg.Sizes[:2]
		}
		res10, err := experiments.Scale(scfg)
		if err != nil {
			return err
		}
		return res10.Table().Fprint(cfg.out)
	case "stream":
		scfg := experiments.StreamConfig{K: 12, Seed: seed}
		var err error
		if scfg.Sizes, err = parseSizes(sizes); err != nil {
			return err
		}
		if cfg.traceOut != "" {
			// Generous capacity: every timed push across the sweep.
			scfg.Tracer = obs.NewTracer(4096)
		}
		res, err := experiments.Stream(scfg)
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		if scfg.Tracer != nil {
			if err := writeTraceOut(cfg, scfg.Tracer); err != nil {
				return err
			}
		}
		return writeBenchout(cfg, res.WriteJSON)
	case "incremental":
		icfg := experiments.IncrementalConfig{K: 12, Seed: seed}
		if cfg.n != 500 { // flag changed from its default
			icfg.N = cfg.n
		}
		if cfg.traceOut != "" {
			icfg.Tracer = obs.NewTracer(4096)
		}
		res, err := experiments.Incremental(icfg)
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		if icfg.Tracer != nil {
			if err := writeTraceOut(cfg, icfg.Tracer); err != nil {
				return err
			}
		}
		return writeBenchout(cfg, res.WriteJSON)
	case "hibernate":
		res, err := experiments.Hibernate(experiments.HibernateConfig{
			Streams: cfg.streams, Seed: seed,
		})
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		return writeBenchout(cfg, res.WriteJSON)
	case "cluster":
		res, err := experiments.Cluster(experiments.ClusterConfig{
			N: cfg.n, Streams: cfg.streams, Seed: seed,
		})
		if err != nil {
			return err
		}
		if err := res.WriteText(cfg.out); err != nil {
			return err
		}
		return writeBenchout(cfg, res.WriteJSON)
	case "block":
		bcfg := experiments.BlockConfig{Seed: seed}
		var err error
		if bcfg.Sizes, err = parseSizes(sizes); err != nil {
			return err
		}
		res, err := experiments.Block(bcfg)
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		return writeBenchout(cfg, res.WriteJSON)
	case "enron":
		res, err := experiments.Enron(experiments.EnronConfig{Seed: seed})
		if err != nil {
			return err
		}
		if err := res.SummaryTable().Fprint(cfg.out); err != nil {
			return err
		}
		if detail {
			if err := res.Table().Fprint(cfg.out); err != nil {
				return err
			}
		}
		if cfg.plot {
			labels := make([]string, len(res.Report.Transitions))
			values := make([]float64, len(res.Report.Transitions))
			for i, tr := range res.Report.Transitions {
				labels[i] = fmt.Sprintf("tr %d", tr.T)
				values[i] = float64(len(tr.Nodes))
			}
			bars, err := asciiplot.Bars(labels, values, 40)
			if err != nil {
				return err
			}
			fmt.Fprintln(cfg.out, "CAD anomalous nodes per transition (Figure 7 analog):")
			fmt.Fprint(cfg.out, bars)

			// Figure 8a analog: the CEO analog's monthly email volume.
			mLabels := make([]string, len(res.CEOMonthlyVolume))
			for i := range mLabels {
				mLabels[i] = fmt.Sprintf("month %d", i)
			}
			hist, err := asciiplot.Bars(mLabels, res.CEOMonthlyVolume, 40)
			if err != nil {
				return err
			}
			fmt.Fprintln(cfg.out, "\nCEO-analog email volume per month (Figure 8a analog):")
			fmt.Fprint(cfg.out, hist)
		}
		return nil
	case "dblp":
		res, err := experiments.DBLP(experiments.DBLPConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		return res.Table().Fprint(cfg.out)
	case "precip":
		res, err := experiments.Precip(experiments.PrecipConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		if err := res.Table().Fprint(cfg.out); err != nil {
			return err
		}
		if detail {
			return res.DiffTable().Fprint(cfg.out)
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

// parseSizes turns a comma-separated -sizes flag into a slice; an empty
// flag returns nil so the experiment's defaults apply.
func parseSizes(sizes string) ([]int, error) {
	if sizes == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad -sizes entry %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// writeTraceOut dumps the tracer's retained push traces as a Chrome
// trace_event document at -trace-out.
func writeTraceOut(cfg benchConfig, tracer *obs.Tracer) error {
	f, err := os.Create(cfg.traceOut)
	if err != nil {
		return err
	}
	if err := obs.WriteChrome(f, tracer.Traces()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "wrote %d traces to %s\n", len(tracer.Traces()), cfg.traceOut)
	return nil
}

// writeBenchout writes the experiment's JSON record to -benchout, when
// set.
func writeBenchout(cfg benchConfig, write func(io.Writer) error) error {
	if cfg.benchout == "" {
		return nil
	}
	f, err := os.Create(cfg.benchout)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out, "wrote %s\n", cfg.benchout)
	return nil
}
