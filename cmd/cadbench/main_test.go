package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchToyExperiments(t *testing.T) {
	// The deterministic toy experiments are cheap enough to run in the
	// CLI test and cover the dispatch, flag parsing and rendering paths
	// end to end.
	var out, errBuf bytes.Buffer
	code := realMain([]string{"-exp", "table1"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "(b1,r1)") {
		t.Fatalf("table1 output wrong:\n%s", out.String())
	}

	out.Reset()
	if code := realMain([]string{"-exp", "fig3"}, &out, &errBuf); code != 0 {
		t.Fatalf("fig3 exit %d", code)
	}
	if !strings.Contains(out.String(), "separation") {
		t.Fatalf("fig3 output missing separation line:\n%s", out.String())
	}
}

func TestBenchStreamWritesJSON(t *testing.T) {
	var out, errBuf bytes.Buffer
	path := filepath.Join(t.TempDir(), "BENCH_stream.json")
	code := realMain([]string{"-exp", "stream", "-sizes", "120,200", "-benchout", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "iter saving") {
		t.Fatalf("stream table missing saving column:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Experiment string `json:"experiment"`
		Results    []struct {
			N               int     `json:"n"`
			Mode            string  `json:"mode"`
			NsPerPush       float64 `json:"ns_per_push"`
			PCGItersPerPush float64 `json:"pcg_iters_per_push"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("benchout is not valid JSON: %v\n%s", err, raw)
	}
	if rec.Experiment != "stream" || len(rec.Results) != 4 {
		t.Fatalf("unexpected benchout record: %+v", rec)
	}
	for _, c := range rec.Results {
		if c.NsPerPush <= 0 || c.PCGItersPerPush <= 0 {
			t.Fatalf("cell not populated: %+v", c)
		}
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-exp", "fig99"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestBenchBadSizes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-exp", "scale", "-sizes", "10,abc"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestBenchBadFamily(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-exp", "scale", "-family", "bogus"}, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "unknown graph family") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestBenchBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-nope"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBenchFig6Plot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out, errBuf bytes.Buffer
	code := realMain([]string{"-exp", "fig6", "-n", "100", "-trials", "2", "-plot"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "* CAD") {
		t.Fatalf("ROC chart legend missing:\n%s", out.String())
	}
}

func TestBenchRemainingCheapExperiments(t *testing.T) {
	// Cover the dispatch paths that run in well under a second each.
	for _, exp := range []string{"table2", "fig2", "fig4"} {
		var out, errBuf bytes.Buffer
		if code := realMain([]string{"-exp", exp}, &out, &errBuf); code != 0 {
			t.Fatalf("%s: exit %d: %s", exp, code, errBuf.String())
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", exp)
		}
	}
}

func TestBenchFig4Plot(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-exp", "fig4", "-n", "150", "-plot"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"Figure 4a", "Figure 4b", "contrast ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestBenchDistanceTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-exp", "distance", "-n", "100", "-trials", "2"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "shortest-path") {
		t.Fatal("distance table missing")
	}
}

func TestBenchStreamTraceOut(t *testing.T) {
	var out, errBuf bytes.Buffer
	path := filepath.Join(t.TempDir(), "trace.json")
	code := realMain([]string{"-exp", "stream", "-sizes", "120", "-trace-out", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "wrote") || !strings.Contains(out.String(), "traces to") {
		t.Fatalf("missing trace confirmation line:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace-out is not valid JSON: %v", err)
	}
	var pushes int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Name == "push" {
			pushes++
		}
	}
	// 13 pushes per mode (1 cold + 12 timed) × 2 modes for one size.
	if pushes < 2 {
		t.Fatalf("trace document has %d push events, want at least one per mode", pushes)
	}
}
