package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBootServeShutdown drives the daemon end-to-end: boot on a free
// port, create a stream over HTTP, push two snapshots, read the
// report, then cancel the context (the SIGTERM path) and verify a
// clean drain-and-exit.
func TestBootServeShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	var wg sync.WaitGroup
	var code int
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pw.Close()
		code = run(ctx, []string{"-addr", "127.0.0.1:0", "-shutdown-timeout", "10s"}, pw, &stderr)
	}()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	line := sc.Text()
	i := strings.LastIndex(line, " ")
	base := "http://" + line[i+1:]
	go io.Copy(io.Discard, pr) // keep the pipe drained

	put, err := http.NewRequest(http.MethodPut, base+"/v1/streams/s", strings.NewReader(`{"l":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(put)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create stream: %s", resp.Status)
	}
	for range [2]int{} {
		resp, err = http.Post(base+"/v1/streams/s/snapshots?sync=1", "application/json",
			strings.NewReader(`{"n":4,"edges":[{"i":0,"j":1,"w":1},{"i":1,"j":2,"w":1},{"i":2,"j":3,"w":1}]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("push: %s", resp.Status)
		}
	}
	resp, err = http.Get(base + "/v1/streams/s/report")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"transitions"`) {
		t.Fatalf("report: %s %s", resp.Status, body)
	}

	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
}

// TestPprofEndpoint boots with -pprof on a free port and verifies the
// profiling mux answers on its own listener while the public API does
// not expose /debug/pprof/.
func TestPprofEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	var wg sync.WaitGroup
	var code int
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pw.Close()
		code = run(ctx, []string{"-addr", "127.0.0.1:0", "-pprof", "127.0.0.1:0", "-shutdown-timeout", "10s"}, pw, &stderr)
	}()

	// First stdout line announces the API address, second the pprof one.
	sc := bufio.NewScanner(pr)
	var api, prof string
	for _, dst := range []*string{&api, &prof} {
		if !sc.Scan() {
			t.Fatalf("missing startup line; stderr: %s", stderr.String())
		}
		line := sc.Text()
		*dst = "http://" + line[strings.LastIndex(line, " ")+1:]
	}
	go io.Copy(io.Discard, pr)

	resp, err := http.Get(prof + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %s", resp.Status)
	}
	resp, err = http.Get(api + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("public API address serves /debug/pprof/ — profiling leaked onto the serving mux")
	}

	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
}

func TestBadFlagsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"":       0,
		"12345":  12345,
		"64KiB":  64 << 10,
		"256MiB": 256 << 20,
		"2GiB":   2 << 30,
		"1TiB":   1 << 40,
		"5kb":    5_000,
		"3MB":    3_000_000,
		"7gb":    7_000_000_000,
		"2TB":    2_000_000_000_000,
		"100B":   100,
		" 8MiB ": 8 << 20,
		"0":      0,
	}
	for in, want := range good {
		got, err := parseByteSize(in)
		if err != nil || got != want {
			t.Errorf("parseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"abc", "-1MiB", "1.5GiB", "MiB", "9999999999GiB"} {
		if _, err := parseByteSize(in); err == nil {
			t.Errorf("parseByteSize(%q) should fail", in)
		}
	}
}

// TestGovernanceFlagsNeedDataDir: hibernation journals state to disk,
// so -mem-budget / -hibernate-after without -data-dir is a usage error.
func TestGovernanceFlagsNeedDataDir(t *testing.T) {
	for _, args := range [][]string{
		{"-mem-budget", "64MiB"},
		{"-hibernate-after", "5m"},
		{"-mem-budget", "nonsense", "-data-dir", t.TempDir()},
	} {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code != 2 {
			t.Fatalf("run(%v) exit code %d, want 2; stderr: %s", args, code, errb.String())
		}
	}
}

func TestBadAddrExit1(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}
