package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"dyngraph/internal/commute"
	"dyngraph/internal/core"
	"dyngraph/internal/datagen"
	"dyngraph/internal/graph"
	"dyngraph/internal/service"
)

// growSequence materializes the grow dataset exactly as the datagen →
// cadrun pipeline does: generate, serialize to the text format (whose
// `v t count` directives carry the per-instance vertex counts), and
// parse it back. Running the bytes through the codec keeps the smoke
// honest about the on-disk format, not just the in-memory graphs.
func growSequence(t *testing.T, seed int64) *graph.Sequence {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteSequence(&buf, datagen.GrowSequence(datagen.GrowConfig{Seed: seed})); err != nil {
		t.Fatal(err)
	}
	seq, err := graph.ReadSequence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// growIDSnapshot names vertex i "a<i>", so consecutive snapshots agree
// on identity and growth interns new IDs in index order.
func growIDSnapshot(g *graph.Graph) service.Snapshot {
	s := service.SnapshotFromGraph(g)
	ids := make([]string, g.N())
	for i := range ids {
		ids[i] = "a" + strconv.Itoa(i)
	}
	s.IDs = ids
	return s
}

// TestGrowSmokeRoutedReplay is the growing-vertex-set acceptance
// check: real cadd subprocesses — three ring nodes plus the router —
// replay the grow dataset, and the routed /report must be
// byte-identical to the batch cadrun encoding of the same sequence
// (transitions score on the common vertex set either way).
func TestGrowSmokeRoutedReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs four subprocesses")
	}
	bin := buildCadd(t)
	ports := freePorts(t, 3)
	peers := fmt.Sprintf("cadd-a=http://127.0.0.1:%d,cadd-b=http://127.0.0.1:%d,cadd-c=http://127.0.0.1:%d",
		ports[0], ports[1], ports[2])
	for i, id := range []string{"cadd-a", "cadd-b", "cadd-c"} {
		startCadd(t, bin, []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", id,
			"-cluster-peers", peers,
		})
	}
	_, routerBase := startCadd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-cluster-peers", peers,
	})

	ctx := context.Background()
	cl := service.NewClient(routerBase, nil)
	seq := growSequence(t, 7)
	const l, seed = 3.0, 7
	cfg := service.StreamConfig{L: l, Seed: seed}
	streams := []string{"grow-00", "grow-01", "grow-02"}
	for _, id := range streams {
		if err := cl.CreateStream(ctx, id, cfg); err != nil {
			t.Fatalf("create %s through router: %v", id, err)
		}
		for i := 0; i < seq.T(); i++ {
			if _, err := cl.Push(ctx, id, seq.At(i), true); err != nil {
				t.Fatalf("push %s instance %d: %v", id, i, err)
			}
		}
	}

	// The batch cadrun path over the identical parsed sequence.
	det := core.New(core.Config{Commute: commute.Config{Seed: seed}})
	trs, err := det.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	rep := core.Threshold(trs, core.SelectDelta(trs, l))
	var batch bytes.Buffer
	if err := core.WriteReportJSON(&batch, rep); err != nil {
		t.Fatal(err)
	}

	for _, id := range streams {
		got := httpGetRaw(t, routerBase+"/v1/streams/"+id+"/report")
		if !bytes.Equal(got, batch.Bytes()) {
			t.Errorf("stream %s: routed grow replay differs from batch cadrun encoding (%d vs %d bytes)",
				id, len(got), batch.Len())
		}
	}
}

// TestGrowSmokeCrashRecovery crash-cycles a durable cadd mid-way
// through a growing external-ID stream: SIGKILL lands after the vertex
// set has grown past the last snapshot (so WAL replay itself must grow
// the vertex table), and after an instance-indexed resume the /report
// — external IDs included — must be byte-identical to an uninterrupted
// replay.
func TestGrowSmokeCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles a subprocess")
	}
	bin := buildCadd(t)
	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-snapshot-every", "3",
		"-fsync", "always",
	}
	seq := growSequence(t, 11)
	total := seq.T()
	synced := 5 // past the instance-3 snapshot: instances 3,4 live only in the WAL
	cfg := service.StreamConfig{L: 3}
	ctx := context.Background()

	proc, base := startCadd(t, bin, args)
	cl := service.NewClient(base, nil)
	if err := cl.CreateStream(ctx, "authors", cfg); err != nil {
		t.Fatalf("create stream: %v", err)
	}
	for i := 0; i < synced; i++ {
		if _, err := cl.PushSnapshotAt(ctx, "authors", growIDSnapshot(seq.At(i)), int64(i), true); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// One more in flight when the SIGKILL lands.
	if _, err := cl.PushSnapshotAt(ctx, "authors", growIDSnapshot(seq.At(synced)), int64(synced), false); err != nil {
		t.Fatalf("async push %d: %v", synced, err)
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	proc.Wait()

	proc2, base2 := startCadd(t, bin, args)
	defer func() { proc2.Process.Kill(); proc2.Wait() }()
	cl2 := service.NewClient(base2, nil).WithRetry(service.RetryPolicy{})

	info, err := cl2.StreamInfo(ctx, "authors")
	if err != nil {
		t.Fatalf("stream did not survive the crash: %v", err)
	}
	if info.Ingested < int64(synced) || info.Ingested > int64(synced)+1 {
		t.Fatalf("recovered Ingested=%d, want %d or %d", info.Ingested, synced, synced+1)
	}
	for i := 0; i < total; i++ {
		res, err := cl2.PushSnapshotAt(ctx, "authors", growIDSnapshot(seq.At(i)), int64(i), true)
		if err != nil {
			t.Fatalf("resume push %d: %v", i, err)
		}
		if wantDup := int64(i) < info.Ingested; res.Duplicate != wantDup {
			t.Fatalf("push %d: duplicate=%v, want %v", i, res.Duplicate, wantDup)
		}
	}

	got := httpGetRaw(t, base2+"/v1/streams/authors/report")
	want := uninterruptedIDReport(t, cfg, seq)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered grow report differs from uninterrupted run:\ngot  %s\nwant %s", got, want)
	}
}

// uninterruptedIDReport replays the sequence as external-ID snapshots
// on a fresh in-process, non-durable server — the reference the
// crashed-and-recovered daemon must match byte for byte, vertex_ids
// included.
func uninterruptedIDReport(t *testing.T, cfg service.StreamConfig, seq *graph.Sequence) []byte {
	t.Helper()
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cl := service.NewClient(hs.URL, hs.Client())
	ctx := context.Background()
	if err := cl.CreateStream(ctx, "authors", cfg); err != nil {
		t.Fatalf("reference create: %v", err)
	}
	for i := 0; i < seq.T(); i++ {
		if _, err := cl.PushSnapshot(ctx, "authors", growIDSnapshot(seq.At(i)), true); err != nil {
			t.Fatalf("reference push %d: %v", i, err)
		}
	}
	return httpGetRaw(t, hs.URL+"/v1/streams/authors/report")
}
