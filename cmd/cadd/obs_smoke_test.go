package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dyngraph/internal/obs"
	"dyngraph/internal/promtext"
	"dyngraph/internal/service"
	"dyngraph/internal/tracecheck"
)

// TestObsSmokeCluster is the observability acceptance check behind
// `make obs-smoke`: real cadd subprocesses — three ring nodes plus the
// router, built with a -ldflags-stamped version — replay pushes through
// the router and must yield (1) one stitched cross-node trace,
// retrievable from the router by the trace id the push response
// announced, whose Chrome export validates under tracecheck with
// distinct pids for router and owner; (2) a parseable /statusz on the
// router covering every node, with SLO burn rates and runtime-sampler
// sections present; (3) a merged cluster /metrics exposition that
// passes promtext.Lint with exemplars, SLO gauges, runtime series and
// the stamped cadd_build_info intact.
func TestObsSmokeCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs four subprocesses")
	}
	const stampedVersion = "obs-smoke-stamp"
	bin := filepath.Join(t.TempDir(), "cadd")
	build := exec.Command("go", "build",
		"-ldflags", "-X dyngraph/internal/buildinfo.Version="+stampedVersion,
		"-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	ports := freePorts(t, 3)
	peers := fmt.Sprintf("cadd-a=http://127.0.0.1:%d,cadd-b=http://127.0.0.1:%d,cadd-c=http://127.0.0.1:%d",
		ports[0], ports[1], ports[2])
	for i, id := range []string{"cadd-a", "cadd-b", "cadd-c"} {
		startCadd(t, bin, []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", id,
			"-cluster-peers", peers,
			"-slo-push-p99", "0.25",
		})
	}
	_, routerBase := startCadd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-cluster-peers", peers,
	})

	// Replay a few pushes through the router; the last sync push's
	// response header announces the trace id to stitch.
	ctx := context.Background()
	cl := service.NewClient(routerBase, nil)
	gs := crashSequence(4)
	streams := []string{"obs-00", "obs-01", "obs-02"}
	var traceID string
	for _, id := range streams {
		if err := cl.CreateStream(ctx, id, service.StreamConfig{L: 2}); err != nil {
			t.Fatalf("create %s through router: %v", id, err)
		}
		for i, g := range gs {
			body, err := json.Marshal(service.SnapshotFromGraph(g))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(routerBase+"/v1/streams/"+id+"/snapshots?sync=1",
				"application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatalf("push %s frame %d: %v", id, i, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("push %s frame %d: status %d", id, i, resp.StatusCode)
			}
			tc, ok := obs.ParseTraceHeader(resp.Header)
			if !ok {
				t.Fatalf("push %s frame %d: response has no %s header", id, i, obs.TraceHeader)
			}
			traceID = tc.TraceID
		}
	}

	// (1) One stitched cross-node trace, valid under tracecheck, with
	// the router and the owning node as separate processes.
	chrome := httpGetRaw(t, routerBase+"/debug/traces?trace="+traceID+"&format=chrome")
	res, err := tracecheck.CheckBytes(chrome)
	if err != nil {
		t.Fatalf("stitched chrome trace invalid: %v\n%s", err, chrome)
	}
	if res.Pids < 2 {
		t.Errorf("stitched trace has %d process(es), want >= 2 (router + owner)", res.Pids)
	}
	var stitched struct {
		TraceID string            `json:"trace_id"`
		Spans   []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(httpGetRaw(t, routerBase+"/debug/traces?trace="+traceID), &stitched); err != nil {
		t.Fatalf("stitched JSON: %v", err)
	}
	if stitched.TraceID != traceID || len(stitched.Spans) == 0 {
		t.Errorf("stitched trace %q has %d spans, want id %q with spans", stitched.TraceID, len(stitched.Spans), traceID)
	}

	// (2) Router /statusz parses and covers every node; each node doc
	// carries the SLO and runtime sections.
	var statusz struct {
		Status string                     `json:"status"`
		Role   string                     `json:"role"`
		Nodes  map[string]json.RawMessage `json:"nodes"`
	}
	if err := json.Unmarshal(httpGetRaw(t, routerBase+"/statusz"), &statusz); err != nil {
		t.Fatalf("router /statusz: %v", err)
	}
	if statusz.Status != "ok" || statusz.Role != "router" || len(statusz.Nodes) != 3 {
		t.Fatalf("router /statusz = status %q role %q with %d nodes, want ok/router/3",
			statusz.Status, statusz.Role, len(statusz.Nodes))
	}
	sloStreams := 0
	for id, raw := range statusz.Nodes {
		var node struct {
			Status  string         `json:"status"`
			Version string         `json:"version"`
			SLO     map[string]any `json:"slo"`
			Runtime map[string]any `json:"runtime"`
		}
		if err := json.Unmarshal(raw, &node); err != nil {
			t.Fatalf("node %s statusz: %v", id, err)
		}
		if node.Status != "ok" {
			t.Errorf("node %s status %q, want ok", id, node.Status)
		}
		if node.Version != stampedVersion {
			t.Errorf("node %s version %q, want stamped %q", id, node.Version, stampedVersion)
		}
		if len(node.Runtime) == 0 {
			t.Errorf("node %s statusz has no runtime section", id)
		}
		sloStreams += len(node.SLO)
	}
	// Stream placement varies with the hash ring, but every stream got
	// the default objective, so the cluster-wide SLO census is complete.
	if sloStreams != len(streams) {
		t.Errorf("statusz reports %d streams under SLO across the cluster, want %d", sloStreams, len(streams))
	}

	// (3) The merged exposition lints with exemplars and carries the
	// SLO gauges, runtime series and the stamped build info.
	metrics := string(httpGetRaw(t, routerBase+"/metrics"))
	if _, err := promtext.Lint(metrics); err != nil {
		t.Fatalf("merged /metrics fails lint: %v", err)
	}
	for _, want := range []string{
		` # {trace_id="`,
		"cadd_slo_push_objective_seconds",
		"cadd_slo_push_burn_rate",
		"cadd_go_goroutines",
		`cadd_build_info{go_version=`,
		stampedVersion,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("merged /metrics missing %q", want)
		}
	}
	samples, err := promtext.Parse(metrics)
	if err != nil {
		t.Fatalf("parse merged metrics: %v", err)
	}
	instances := map[string]bool{}
	for _, s := range samples {
		if s.Name == "cadd_snapshots_processed_total" {
			instances[s.Label("instance")] = true
		}
	}
	for _, id := range []string{"cadd-a", "cadd-b", "cadd-c"} {
		if !instances[id] {
			t.Errorf("merged metrics carry no processed counter from %s", id)
		}
	}
}
