package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dyngraph/internal/enron"
	"dyngraph/internal/service"
)

// freePorts reserves n distinct loopback ports. The static
// -cluster-peers list needs every node's address before any node
// starts, so the ports are picked (and released) up front; loopback
// port reuse races are vanishingly rare within one test.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// TestClusterRoutedReplayMatchesSingleNode is the scale-out acceptance
// check: real cadd subprocesses — three nodes and a router — replay an
// Enron prefix through the router, and every stream's /report must be
// byte-identical to the same replay on a plain single-node server. The
// cluster changes where streams live, never what they compute.
func TestClusterRoutedReplayMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs four subprocesses")
	}
	bin := buildCadd(t)
	ports := freePorts(t, 3)
	peers := fmt.Sprintf("cadd-a=http://127.0.0.1:%d,cadd-b=http://127.0.0.1:%d,cadd-c=http://127.0.0.1:%d",
		ports[0], ports[1], ports[2])
	for i, id := range []string{"cadd-a", "cadd-b", "cadd-c"} {
		startCadd(t, bin, []string{
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-node-id", id,
			"-cluster-peers", peers,
		})
	}
	_, routerBase := startCadd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-cluster-peers", peers,
	})

	ctx := context.Background()
	cl := service.NewClient(routerBase, nil)
	const months = 6
	data := enron.Generate(enron.Config{Months: months, Seed: 1})
	cfg := service.StreamConfig{L: 5, Seed: 1}
	streams := []string{"enron-00", "enron-01", "enron-02", "enron-03"}
	for _, id := range streams {
		if err := cl.CreateStream(ctx, id, cfg); err != nil {
			t.Fatalf("create %s through router: %v", id, err)
		}
		for i := 0; i < months; i++ {
			if _, err := cl.Push(ctx, id, data.Seq.At(i), true); err != nil {
				t.Fatalf("push %s month %d: %v", id, i, err)
			}
		}
	}

	// The scattered list sees every stream across the nodes.
	infos, err := cl.Streams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(streams) {
		t.Fatalf("router lists %d streams, want %d: %+v", len(infos), len(streams), infos)
	}

	// Byte-identical reports: routed replay vs single-node replay.
	want := uninterruptedReport(t, cfg, data.Seq.Graphs()[:months])
	for _, id := range streams {
		got := httpGetRaw(t, routerBase+"/v1/streams/"+id+"/report")
		if !bytes.Equal(got, want) {
			t.Errorf("stream %s: routed report differs from single-node replay (%d vs %d bytes)",
				id, len(got), len(want))
		}
	}

	// The merged exposition spans the nodes.
	metrics := string(httpGetRaw(t, routerBase+"/metrics"))
	for _, id := range []string{"cadd-a", "cadd-b", "cadd-c"} {
		if !strings.Contains(metrics, fmt.Sprintf("instance=%q", id)) {
			t.Errorf("router /metrics has no samples from %s", id)
		}
	}
}

// TestClusterFailoverPromotion is the warm-failover acceptance check:
// a primary cadd ships its WAL to a standby, SIGKILL takes the primary
// down, and promoting the standby's replica yields a byte-identical
// /report — the follower was warm, not rebuilt.
func TestClusterFailoverPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles subprocesses")
	}
	bin := buildCadd(t)
	ctx := context.Background()

	// Standby first (the primary dials it), on its own data dir.
	_, standbyBase := startCadd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", t.TempDir(),
	})
	primary, primaryBase := startCadd(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", t.TempDir(),
		"-fsync", "always",
		"-snapshot-every", "100", // no compaction: the replica catches up frame by frame
		"-replicate-to", standbyBase,
	})

	const total = 10
	gs := crashSequence(total)
	cfg := service.StreamConfig{L: 2}
	cl := service.NewClient(primaryBase, nil)
	if err := cl.CreateStream(ctx, "emails", cfg); err != nil {
		t.Fatalf("create stream: %v", err)
	}
	for i := 0; i < total; i++ {
		if _, err := cl.PushAt(ctx, "emails", gs[i], int64(i), true); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}

	// Wait for the standby's replica to hold every acked frame
	// (shipping is asynchronous behind the push ack).
	type replicaInfo struct {
		ID     string `json:"id"`
		Frames int    `json:"frames"`
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		var infos []replicaInfo
		if err := json.Unmarshal(httpGetRaw(t, standbyBase+"/v1/replica/streams"), &infos); err != nil {
			t.Fatal(err)
		}
		if len(infos) == 1 && infos[0].ID == "emails" && infos[0].Frames == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up: %+v", infos)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The answer the cluster owes its clients, then a real crash.
	want := httpGetRaw(t, primaryBase+"/v1/streams/emails/report")
	if err := primary.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL primary: %v", err)
	}
	primary.Wait()

	// Promote the warm replica on the standby and serve.
	resp, err := http.Post(standbyBase+"/v1/replica/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: status %d", resp.StatusCode)
	}
	got := httpGetRaw(t, standbyBase+"/v1/streams/emails/report")
	if !bytes.Equal(got, want) {
		t.Fatalf("promoted report differs from the dead primary's (%d vs %d bytes)", len(got), len(want))
	}

	// The promoted stream is a first-class durable stream now: it
	// answers status and accepts new pushes.
	info, err := service.NewClient(standbyBase, nil).StreamInfo(ctx, "emails")
	if err != nil {
		t.Fatalf("promoted stream status: %v", err)
	}
	if info.Ingested != total {
		t.Fatalf("promoted stream Ingested=%d, want %d", info.Ingested, total)
	}
}
