// Command cadd is the streaming anomaly-detection daemon: a
// long-running HTTP server that maintains many independent named
// detection streams, each wrapping an online CAD detector behind a
// bounded ingest queue.
//
// Usage:
//
//	cadd [-addr :8470] [-queue 64] [-max-streams 1024]
//	     [-shutdown-timeout 30s] [-pprof 127.0.0.1:0]
//	     [-log-format text|json] [-log-level info] [-trace-buffer 64]
//	     [-slo-push-p99 0.25] [-version]
//	     [-data-dir /var/lib/cadd] [-fsync always|off] [-snapshot-every 64]
//	     [-mem-budget 256MiB] [-hibernate-after 10m] [-min-resident 1]
//	     [-cluster-peers a=http://h1:8470,b=http://h2:8470] [-node-id a]
//	     [-replicate-to http://standby:8470] [-health-interval 2s]
//	     [-route-redirect]
//
// API (all JSON; see internal/service for the wire types):
//
//	PUT    /v1/streams/{id}                 create a stream
//	GET    /v1/streams                      list streams
//	GET    /v1/streams/{id}                 stream status
//	DELETE /v1/streams/{id}                 drop a stream
//	POST   /v1/streams/{id}/snapshots       ingest one graph instance
//	                                        (?sync=1 waits for scoring;
//	                                        429 = queue full, retry later)
//	GET    /v1/streams/{id}/report          re-thresholded history
//	GET    /v1/streams/{id}/transitions/{t} one transition's anomalies
//	GET    /healthz                         liveness (?verbose=1 = /statusz)
//	GET    /statusz                         operational snapshot: build,
//	                                        uptime, residency, SLO burn
//	                                        rates, runtime stats, slowest
//	                                        recent pushes
//	GET    /metrics                         Prometheus text format
//	GET    /streams                         residency state + resident
//	                                        bytes per stream (admin)
//	GET    /debug/traces                    retained push traces (JSON;
//	                                        ?stream= filters, ?trace= picks
//	                                        one distributed trace,
//	                                        ?format=chrome emits Chrome
//	                                        trace_event JSON for
//	                                        chrome://tracing / Perfetto)
//
// Structured logs (stream lifecycle, push errors, slow pushes) go to
// stderr; -log-format json switches them to one-JSON-object-per-line
// for log shippers, -log-level debug adds per-request lines. Every
// request carries an id (X-Request-ID, minted when absent) that appears
// in the response header, the logs and the push trace.
//
// -trace-buffer sets the per-stream trace retention behind
// /debug/traces (0 disables tracing for streams that don't set their
// own trace_buffer). Pushes carry a distributed trace context in the
// X-Cadd-Trace header (W3C-traceparent shaped) — minted here when the
// caller sends none, continued when the router or a client does — so a
// routed cluster push yields one cross-node trace, stitched by the
// router's /debug/traces?trace=<id>. See docs/OBSERVABILITY.md.
//
// -slo-push-p99 sets a default per-stream push-latency SLO objective
// in seconds (at most 1% of pushes may exceed it); burn rates over 5m
// and 1h windows are exported as cadd_slo_push_burn_rate and in
// /statusz. Streams override with slo_push_seconds (negative opts
// out). -version prints the build stamp and exits.
//
// On SIGINT/SIGTERM the server stops accepting requests, drains every
// stream's queue (bounded by -shutdown-timeout), and exits — accepted
// snapshots are never silently dropped.
//
// -data-dir makes streams durable: every accepted push is journaled to
// a per-stream write-ahead log under <data-dir>/streams/<id>/ and
// compacted into a snapshot every -snapshot-every pushes, and on the
// next boot the daemon replays the journals before it starts
// listening, so a kill -9 loses at most the pushes that were never
// acknowledged. -fsync off trades that guarantee for latency by
// leaving WAL writes in the page cache. See docs/DURABILITY.md for
// the file formats and recovery semantics.
//
// -mem-budget caps the bytes of detector state resident in memory
// across all streams (accepts 12345, 64KiB, 256MiB, 2GiB, or the SI
// forms KB/MB/GB); past 90% of the budget the daemon hibernates the
// least-recently-used streams — journals their state to -data-dir and
// drops it from memory — until usage falls under 75%. -hibernate-after
// additionally hibernates any stream idle for that long regardless of
// pressure. A push or report on a hibernated stream transparently
// rehydrates it from its journal. Both flags require -data-dir;
// -min-resident streams (default 1) are always kept resident. The
// /streams endpoint reports each stream's residency state and
// estimated bytes. See docs/MEMORY.md.
//
// Cluster mode (see docs/CLUSTER.md): -cluster-peers names the static
// member set as id=url pairs. With -node-id naming this process, cadd
// runs as a cluster node — it serves the streams a shared consistent-
// hash ring assigns it and proxies misrouted stream requests one hop
// to their owner. With -cluster-peers but no -node-id, cadd runs as a
// stateless router: stream-scoped calls forward to the owner (or
// redirect with -route-redirect), cluster-wide reads (/v1/streams,
// /streams, /v1/reports, /debug/traces, /metrics) scatter to every
// healthy node and merge. -health-interval tunes the peer liveness
// probe period. -replicate-to streams every journal artifact (WAL
// frames, snapshots, configs) to a standby cadd's /v1/replica API so
// a byte-identical warm copy is ready for promotion; it requires
// -data-dir, and any durable cadd exposes the /v1/replica surface to
// accept such shipments.
//
// -pprof serves the net/http/pprof profiling endpoints (/debug/pprof/)
// on a dedicated listener, kept off the public API address so profiling
// is never exposed by accident. It is off by default; pass e.g.
// -pprof 127.0.0.1:6060 (or :0 for a free port — the bound address is
// announced on stdout) to profile a live daemon:
//
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// Example session:
//
//	cadd -addr :8470 &
//	curl -X PUT localhost:8470/v1/streams/emails -d '{"l":5}'
//	datagen -dataset enron -out /tmp/enron.txt   # then replay months
//	curl localhost:8470/v1/streams/emails/report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dyngraph/internal/buildinfo"
	"dyngraph/internal/cluster"
	"dyngraph/internal/obs"
	"dyngraph/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon behind flag plumbing, factored out so tests
// can drive a full boot/serve/shutdown cycle with a cancellable
// context and in-memory streams.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr            = fs.String("addr", ":8470", "listen address (host:port; :0 picks a free port)")
		queue           = fs.Int("queue", 64, "default per-stream ingest queue bound")
		maxStreams      = fs.Int("max-streams", 1024, "maximum concurrently live streams")
		shutdownTimeout = fs.Duration("shutdown-timeout", 30*time.Second, "drain budget after SIGTERM")
		pprofAddr       = fs.String("pprof", "", "serve net/http/pprof on this dedicated address (off when empty; :0 picks a free port)")
		logFormat       = fs.String("log-format", "text", "structured log encoding: text or json")
		logLevel        = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		traceBuffer     = fs.Int("trace-buffer", 64, "per-stream push-trace retention for /debug/traces (0 disables)")
		dataDir         = fs.String("data-dir", "", "journal streams to this directory and recover them at boot (off when empty)")
		fsync           = fs.String("fsync", "always", "WAL fsync policy: always (each push durable on ack) or off (page cache only)")
		snapshotEvery   = fs.Int("snapshot-every", 64, "journaled pushes between compact snapshots")
		memBudget       = fs.String("mem-budget", "", "resident detector-state budget across streams, e.g. 256MiB (off when empty; needs -data-dir)")
		hibernateAfter  = fs.Duration("hibernate-after", 0, "hibernate streams idle this long (off when 0; needs -data-dir)")
		minResident     = fs.Int("min-resident", 1, "streams never hibernated by the governor")
		clusterPeers    = fs.String("cluster-peers", "", "static cluster membership as id=url pairs, comma separated (off when empty)")
		nodeID          = fs.String("node-id", "", "this process's id in -cluster-peers; with -cluster-peers but no -node-id, cadd runs as a stateless router")
		replicateTo     = fs.String("replicate-to", "", "ship every journal artifact to this standby cadd's /v1/replica API (needs -data-dir)")
		healthInterval  = fs.Duration("health-interval", 2*time.Second, "cluster peer liveness probe period")
		routeRedirect   = fs.Bool("route-redirect", false, "router mode: answer stream calls with 307 to the owner instead of proxying")
		sloPushP99      = fs.Float64("slo-push-p99", 0, "default per-stream push-latency SLO objective in seconds, p99 (off when 0)")
		showVersion     = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintf(stdout, "cadd %s %s\n", buildinfo.Version, buildinfo.GoVersion())
		return 0
	}
	budgetBytes, err := parseByteSize(*memBudget)
	if err != nil {
		fmt.Fprintf(stderr, "cadd: bad -mem-budget %q: %v\n", *memBudget, err)
		return 2
	}
	if (budgetBytes > 0 || *hibernateAfter > 0) && *dataDir == "" {
		fmt.Fprintln(stderr, "cadd: -mem-budget and -hibernate-after need -data-dir (hibernation journals state to disk)")
		return 2
	}
	var doFsync bool
	switch *fsync {
	case "always":
		doFsync = true
	case "off":
		doFsync = false
	default:
		fmt.Fprintf(stderr, "cadd: bad -fsync %q (want always or off)\n", *fsync)
		return 2
	}

	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 2
	}

	if *nodeID != "" && *clusterPeers == "" {
		fmt.Fprintln(stderr, "cadd: -node-id needs -cluster-peers")
		return 2
	}
	if *replicateTo != "" && *dataDir == "" {
		fmt.Fprintln(stderr, "cadd: -replicate-to needs -data-dir (replication ships the journal)")
		return 2
	}
	if *clusterPeers != "" && *nodeID == "" {
		// Router mode: no detector state at all, just placement,
		// forwarding and scatter-gather over the peers.
		return runRouter(ctx, stdout, stderr, logger, *addr, *clusterPeers, *healthInterval, *routeRedirect, *shutdownTimeout)
	}

	// Cluster-node plumbing, built before the server so its hooks can be
	// wired into the service config.
	var (
		mem            *cluster.Membership
		nodeProxy      *cluster.NodeProxy
		replicator     *cluster.Replicator
		extraMetrics   []func(io.Writer)
		statusSections []service.StatusSection
		replSink       service.ReplicationSink
	)
	// Go runtime telemetry: a background sampler feeding the
	// cadd_go_* series and the /statusz runtime section; the push hot
	// path never touches it.
	sampler := obs.NewRuntimeSampler(0)
	sampler.Start()
	defer sampler.Stop()
	extraMetrics = append(extraMetrics, sampler.WriteMetrics)
	statusSections = append(statusSections, service.StatusSection{
		Name: "runtime", Value: func() any { return sampler.Stats() },
	})
	if *replicateTo != "" {
		replicator = cluster.NewReplicator(*replicateTo, nil, logger)
		replSink = replicator
		extraMetrics = append(extraMetrics, replicator.WriteMetrics)
		statusSections = append(statusSections, service.StatusSection{
			Name: "replication", Value: func() any { return replicator.Status() },
		})
	}
	if *clusterPeers != "" {
		peers, err := cluster.ParsePeers(*clusterPeers)
		if err != nil {
			fmt.Fprintln(stderr, "cadd:", err)
			return 2
		}
		mem, err = cluster.NewMembership(cluster.MembershipConfig{
			Peers:          peers,
			HealthInterval: *healthInterval,
			Logger:         logger,
		})
		if err != nil {
			fmt.Fprintln(stderr, "cadd:", err)
			return 2
		}
		nodeProxy, err = cluster.NewNodeProxy(*nodeID, mem, nil, logger)
		if err != nil {
			fmt.Fprintln(stderr, "cadd:", err)
			return 2
		}
		extraMetrics = append(extraMetrics, mem.WriteMetrics, nodeProxy.WriteMetrics)
		statusSections = append(statusSections, service.StatusSection{
			Name: "peers", Value: func() any { return mem.Health() },
		})
	}

	defaultTrace := *traceBuffer
	if defaultTrace <= 0 {
		defaultTrace = -1 // service: negative disables, 0 means default
	}
	srv := service.New(service.Config{
		DefaultQueueSize:   *queue,
		MaxStreams:         *maxStreams,
		DefaultTraceBuffer: defaultTrace,
		Logger:             logger,
		DataDir:            *dataDir,
		Fsync:              doFsync,
		SnapshotEvery:      *snapshotEvery,
		MemBudgetBytes:     budgetBytes,
		HibernateAfter:     *hibernateAfter,
		MinResident:        *minResident,
		NodeID:             *nodeID,
		Replication:        replSink,
		ExtraMetrics:       extraMetrics,
		SLOPushP99:         *sloPushP99,
		StatusSections:     statusSections,
	})
	if *dataDir != "" {
		// Recover journaled streams before the listener opens, so the
		// first request already sees the restored state.
		logger.Info("recovering streams", "data_dir", *dataDir)
		if err := srv.Recover(); err != nil {
			fmt.Fprintln(stderr, "cadd:", err)
			return 1
		}
		logger.Info("recovery complete", "streams", srv.NumStreams())
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "cadd: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(),
		"queue", *queue, "max_streams", *maxStreams, "trace_buffer", *traceBuffer)
	if budgetBytes > 0 || *hibernateAfter > 0 {
		logger.Info("memory governance on", "mem_budget_bytes", budgetBytes,
			"hibernate_after", hibernateAfter.String(), "min_resident", *minResident)
	}

	// Profiling stays on its own mux and listener: the public handler
	// never gains /debug/pprof/, even with the flag set.
	var ps *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, "cadd: pprof:", err)
			return 1
		}
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps = &http.Server{Handler: pm, ReadHeaderTimeout: 10 * time.Second}
		fmt.Fprintf(stdout, "cadd: pprof on %s\n", pln.Addr())
		go func() {
			if err := ps.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(stderr, "cadd: pprof:", err)
			}
		}()
	}

	// Handler assembly, innermost out: the service API, the cluster
	// ownership proxy around it, and the replica surface beside it (any
	// durable cadd can accept WAL shipments and be promoted).
	handler := srv.Handler()
	if nodeProxy != nil {
		handler = nodeProxy.Wrap(handler)
	}
	var replica *cluster.Replica
	if *dataDir != "" {
		replica, err = cluster.NewReplica(cluster.ReplicaConfig{
			DataDir: *dataDir,
			Promote: srv.RecoverStream,
			Logger:  logger,
		})
		if err != nil {
			ln.Close()
			fmt.Fprintln(stderr, "cadd:", err)
			return 1
		}
		outer := http.NewServeMux()
		outer.Handle("/v1/replica/", replica.Handler())
		outer.Handle("/", handler)
		handler = outer
	}
	if mem != nil {
		mem.Start()
		logger.Info("cluster node up", "node_id", *nodeID, "peers", len(mem.Peers()),
			"health_interval", healthInterval.String())
	}
	if replicator != nil {
		logger.Info("replicating journal", "target", *replicateTo)
	}

	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "cadd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop taking requests first, then drain every
	// stream's queue so accepted snapshots are scored before exit.
	fmt.Fprintln(stdout, "cadd: shutting down, draining streams")
	logger.Info("shutting down", "drain_budget", shutdownTimeout.String())
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "cadd: http shutdown:", err)
		code = 1
	}
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		code = 1
	}
	if replicator != nil {
		// Drain the replication queue after the streams drain, so the
		// standby holds everything this process acknowledged.
		if err := replicator.Flush(sctx); err != nil {
			fmt.Fprintln(stderr, "cadd:", err)
			code = 1
		}
		replicator.Close()
	}
	if mem != nil {
		mem.Stop()
	}
	if replica != nil {
		replica.Close()
	}
	if ps != nil {
		// Best-effort: an aborted in-flight profile is not a failed drain.
		if err := ps.Shutdown(sctx); err != nil {
			fmt.Fprintln(stderr, "cadd: pprof shutdown:", err)
		}
	}
	fmt.Fprintln(stdout, "cadd: bye")
	return code
}

// runRouter serves the stateless cluster front door: same listen and
// shutdown discipline as a node, none of the detector machinery.
func runRouter(ctx context.Context, stdout, stderr io.Writer, logger *slog.Logger,
	addr, clusterPeers string, healthInterval time.Duration, redirect bool,
	shutdownTimeout time.Duration) int {
	peers, err := cluster.ParsePeers(clusterPeers)
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 2
	}
	mem, err := cluster.NewMembership(cluster.MembershipConfig{
		Peers:          peers,
		HealthInterval: healthInterval,
		Logger:         logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 2
	}
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Membership: mem,
		Redirect:   redirect,
		Logger:     logger,
	})
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 2
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(stderr, "cadd:", err)
		return 1
	}
	mem.Start()
	fmt.Fprintf(stdout, "cadd: router listening on %s\n", ln.Addr())
	logger.Info("router listening", "addr", ln.Addr().String(), "peers", len(peers),
		"redirect", redirect, "health_interval", healthInterval.String())

	hs := &http.Server{Handler: router.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "cadd:", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "cadd: router shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	code := 0
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(stderr, "cadd: http shutdown:", err)
		code = 1
	}
	mem.Stop()
	fmt.Fprintln(stdout, "cadd: bye")
	return code
}

// parseByteSize parses a human byte size for -mem-budget: a bare
// integer is bytes; KiB/MiB/GiB/TiB are binary multiples and
// KB/MB/GB/TB decimal ones, matched case-insensitively. "" means
// unlimited and parses to 0.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	units := []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"B", 1},
	}
	mult := int64(1)
	num := s
	for _, u := range units {
		if len(s) > len(u.suffix) && strings.EqualFold(s[len(s)-len(u.suffix):], u.suffix) {
			mult, num = u.mult, strings.TrimSpace(s[:len(s)-len(u.suffix)])
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("want an integer with an optional KiB/MiB/GiB/TiB or KB/MB/GB/TB suffix")
	}
	if n < 0 {
		return 0, fmt.Errorf("must not be negative")
	}
	if n > 0 && n > (1<<62)/mult {
		return 0, fmt.Errorf("overflows")
	}
	return n * mult, nil
}

// newLogger builds the daemon's slog.Logger from the -log-format and
// -log-level flags.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
