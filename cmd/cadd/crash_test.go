package main

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dyngraph/internal/graph"
	"dyngraph/internal/service"
)

// TestCrashRecovery is the durability acceptance test: it runs the real
// cadd binary as a subprocess, kills it with SIGKILL mid-stream (a push
// still in flight), restarts it on the same -data-dir and verifies that
// after resuming the remaining pushes the /report body is byte-for-byte
// identical to an uninterrupted run of the same sequence. in-process
// run() can't be used here because SIGKILL must hit a separate process
// to be a real crash.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles a subprocess")
	}
	bin := buildCadd(t)
	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-snapshot-every", "3",
		"-fsync", "always",
	}
	const (
		total  = 12 // instances in the full sequence
		synced = 7  // sync pushes acknowledged before the crash
	)
	gs := crashSequence(total)
	cfg := service.StreamConfig{L: 2}
	ctx := context.Background()

	// Phase 1: boot, ingest a prefix, then SIGKILL with a push in flight.
	proc, base := startCadd(t, bin, args)
	cl := service.NewClient(base, nil)
	if err := cl.CreateStream(ctx, "emails", cfg); err != nil {
		t.Fatalf("create stream: %v", err)
	}
	for i := 0; i < synced; i++ {
		if _, err := cl.PushAt(ctx, "emails", gs[i], int64(i), true); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// Queue one more without waiting for scoring, then kill immediately:
	// the crash lands while that push is being processed, so recovery
	// may or may not include it — both are legal, and the instance-
	// indexed resume below handles either.
	if _, err := cl.PushAt(ctx, "emails", gs[synced], int64(synced), false); err != nil {
		t.Fatalf("async push %d: %v", synced, err)
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	proc.Wait()

	// Phase 2: restart on the same data dir and resume.
	proc2, base2 := startCadd(t, bin, args)
	defer func() { proc2.Process.Kill(); proc2.Wait() }()
	cl2 := service.NewClient(base2, nil).WithRetry(service.RetryPolicy{})

	info, err := cl2.StreamInfo(ctx, "emails")
	if err != nil {
		t.Fatalf("stream did not survive the crash: %v", err)
	}
	if info.Ingested < synced || info.Ingested > synced+1 {
		t.Fatalf("recovered Ingested=%d, want %d (acked) or %d (in-flight made it)",
			info.Ingested, synced, synced+1)
	}
	metrics := httpGetRaw(t, base2+"/metrics")
	if !strings.Contains(string(metrics), "cadd_recovered_streams_total 1") {
		t.Fatalf("recovery metric missing:\n%s", metrics)
	}

	// Re-push the whole sequence from zero: everything already journaled
	// must come back as a duplicate ack, the rest is scored normally.
	for i := 0; i < total; i++ {
		res, err := cl2.PushAt(ctx, "emails", gs[i], int64(i), true)
		if err != nil {
			t.Fatalf("resume push %d: %v", i, err)
		}
		if wantDup := int64(i) < info.Ingested; res.Duplicate != wantDup {
			t.Fatalf("push %d: duplicate=%v, want %v", i, res.Duplicate, wantDup)
		}
	}

	got := httpGetRaw(t, base2+"/v1/streams/emails/report")
	want := uninterruptedReport(t, cfg, gs)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered report differs from uninterrupted run:\ngot  %s\nwant %s", got, want)
	}
}

// TestCrashDuringHibernationChurn crashes the daemon while the memory
// governor is actively hibernating: a -mem-budget far below one
// stream's footprint keeps every push kicking a reclaim pass, so
// streams cycle resident⇄hibernated continuously, and the SIGKILL
// lands with hibernation snapshot writes in flight. Hibernation reuses
// the crash-safe journal path (snapshot renamed before the WAL
// resets), so a restart must recover every acked push of every stream
// and, after an instance-indexed resume, reproduce the uninterrupted
// /report byte for byte.
func TestCrashDuringHibernationChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-cycles a subprocess")
	}
	bin := buildCadd(t)
	dataDir := t.TempDir()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-data-dir", dataDir,
		"-snapshot-every", "3",
		"-fsync", "always",
		"-mem-budget", "1KiB", // below any stream's footprint: constant churn
		"-min-resident", "1",
	}
	const (
		total  = 10 // instances in the full sequence
		synced = 6  // sync pushes per stream acked before the crash
	)
	gs := crashSequence(total)
	cfg := service.StreamConfig{L: 2}
	ctx := context.Background()
	streams := []string{"hot", "warm", "cold"}

	// Phase 1: boot, interleave sync pushes across the streams (each
	// push re-kicks the governor, each next push rehydrates), then
	// SIGKILL right behind an async push.
	proc, base := startCadd(t, bin, args)
	cl := service.NewClient(base, nil)
	for _, id := range streams {
		if err := cl.CreateStream(ctx, id, cfg); err != nil {
			t.Fatalf("create %s: %v", id, err)
		}
	}
	for i := 0; i < synced; i++ {
		for _, id := range streams {
			if _, err := cl.PushAt(ctx, id, gs[i], int64(i), true); err != nil {
				t.Fatalf("%s push %d: %v", id, i, err)
			}
		}
	}
	if _, err := cl.PushAt(ctx, streams[0], gs[synced], int64(synced), false); err != nil {
		t.Fatalf("async push: %v", err)
	}
	if err := proc.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	proc.Wait()

	// Phase 2: restart on the same data dir. A governed boot registers
	// the recovered streams hibernated; every acked push must be there.
	proc2, base2 := startCadd(t, bin, args)
	defer func() { proc2.Process.Kill(); proc2.Wait() }()
	cl2 := service.NewClient(base2, nil)

	admin, err := cl2.AdminStreams(ctx)
	if err != nil || len(admin) != len(streams) {
		t.Fatalf("AdminStreams after crash: %v, %d entries", err, len(admin))
	}
	for _, ai := range admin {
		if ai.State != service.StreamStateHibernated {
			t.Fatalf("governed boot left %s %s, want hibernated", ai.ID, ai.State)
		}
	}
	want := uninterruptedReport(t, cfg, gs)
	for _, id := range streams {
		info, err := cl2.StreamInfo(ctx, id)
		if err != nil {
			t.Fatalf("%s did not survive the crash: %v", id, err)
		}
		if info.Ingested < synced || info.Ingested > synced+1 {
			t.Fatalf("%s recovered Ingested=%d, want %d or %d", id, info.Ingested, synced, synced+1)
		}
		for i := 0; i < total; i++ {
			res, err := cl2.PushAt(ctx, id, gs[i], int64(i), true)
			if err != nil {
				t.Fatalf("%s resume push %d: %v", id, i, err)
			}
			if wantDup := int64(i) < info.Ingested; res.Duplicate != wantDup {
				t.Fatalf("%s push %d: duplicate=%v, want %v", id, i, res.Duplicate, wantDup)
			}
		}
		got := httpGetRaw(t, base2+"/v1/streams/"+id+"/report")
		if !bytes.Equal(got, want) {
			t.Fatalf("%s diverged after crash mid-hibernation:\ngot  %s\nwant %s", id, got, want)
		}
	}
	metrics := string(httpGetRaw(t, base2+"/metrics"))
	if !strings.Contains(metrics, "cadd_rehydrations_total") {
		t.Fatalf("rehydration metric missing after governed resume:\n%s", metrics)
	}
}

// buildCadd compiles the daemon into the test's temp dir.
func buildCadd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cadd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startCadd launches the binary and parses the announced listen address
// from its first stdout line.
func startCadd(t *testing.T, bin string, args []string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	deadline.Stop()
	line := sc.Text()
	go io.Copy(io.Discard, stdout)
	return cmd, "http://" + line[strings.LastIndex(line, " ")+1:]
}

// uninterruptedReport scores the same sequence on a fresh in-process,
// non-durable server and returns the raw /report body — the reference
// the crashed-and-recovered daemon must match byte for byte.
func uninterruptedReport(t *testing.T, cfg service.StreamConfig, gs []*graph.Graph) []byte {
	t.Helper()
	srv := service.New(service.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	cl := service.NewClient(hs.URL, hs.Client())
	ctx := context.Background()
	if err := cl.CreateStream(ctx, "emails", cfg); err != nil {
		t.Fatalf("reference create: %v", err)
	}
	for i, g := range gs {
		if _, err := cl.Push(ctx, "emails", g, true); err != nil {
			t.Fatalf("reference push %d: %v", i, err)
		}
	}
	return httpGetRaw(t, hs.URL+"/v1/streams/emails/report")
}

func httpGetRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s %s", url, resp.Status, body)
	}
	return body
}

// crashSequence mirrors the service package's deterministic test
// sequence: a 12-node two-cluster graph with jittered weights and a
// planted bridge at the middle instance. Small enough for the exact
// commute oracle, so recovery is bit-reproducible.
func crashSequence(T int) []*graph.Graph {
	gs := make([]*graph.Graph, T)
	for step := range gs {
		b := graph.NewBuilder(12)
		for c := 0; c < 2; c++ {
			base := c * 6
			for i := 0; i < 6; i++ {
				for j := i + 1; j < 6; j++ {
					jitter := float64((step*7+i*3+j)%5) * 0.01
					b.SetEdge(base+i, base+j, 2+jitter)
				}
			}
		}
		b.SetEdge(0, 6, 0.2)
		if step == T/2 {
			b.SetEdge(2, 9, 3)
		}
		gs[step] = b.MustBuild()
	}
	return gs
}

// TestDataDirBootWithoutJournal pins that -data-dir on an empty
// directory is a clean no-op boot (no streams, no recovery errors).
func TestDataDirBootWithoutJournal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw := io.Pipe()
	var stderr bytes.Buffer
	var wg sync.WaitGroup
	var code int
	dir := t.TempDir()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pw.Close()
		code = run(ctx, []string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-shutdown-timeout", "10s"}, pw, &stderr)
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", stderr.String())
	}
	base := "http://" + sc.Text()[strings.LastIndex(sc.Text(), " ")+1:]
	go io.Copy(io.Discard, pr)

	resp, err := http.Get(base + "/v1/streams")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list streams: %s", resp.Status)
	}
	cancel()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if code != 0 {
		t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
	}
}

func TestBadFsyncFlagExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-fsync", "sometimes"}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bad -fsync") {
		t.Fatalf("stderr %q does not name the bad flag", errb.String())
	}
}
