package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// toyInput is the toy example serialized by cmd/datagen; kept inline so
// the CLI test is hermetic. It contains the Figure 1 graphs: the three
// planted anomalies are (b1,r1)=(0,8), (b4,b5)=(3,4), (r7,r8)=(14,15).
const toyInput = `n 17 t 2
0 0 1 2
0 0 2 2
0 0 7 2
0 1 2 2
0 1 6 2
0 2 3 2
0 3 4 1
0 3 5 2
0 4 5 2
0 5 6 2
0 6 7 2
0 7 9 0.5
0 8 9 2
0 9 10 2
0 10 12 2
0 12 14 2
0 8 14 2
0 9 12 2
0 11 13 2
0 13 16 2
0 15 16 2
0 11 15 2
0 11 16 2
0 14 15 2
1 0 1 2
1 0 2 1.5
1 0 7 2
1 1 2 2
1 1 6 2.5
1 2 3 2
1 3 4 6
1 3 5 2
1 4 5 2
1 5 6 2
1 6 7 2
1 7 9 0.5
1 8 9 2
1 9 10 2
1 10 12 2
1 12 14 2
1 8 14 2
1 9 12 2
1 11 13 2
1 13 16 2
1 15 16 2
1 11 15 2
1 11 16 2
1 14 15 1
1 0 8 1.5
`

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = realMain(args, strings.NewReader(toyInput), &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestCLITextOutputFindsPlantedEdges(t *testing.T) {
	out, errOut, code := runCLI(t, "-in", "-", "-l", "6")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"(v0, v8)", "(v3, v4)", "(v14, v15)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "n=17 T=2") {
		t.Errorf("summary line missing: %s", out)
	}
}

func TestCLIJSONOutput(t *testing.T) {
	out, errOut, code := runCLI(t, "-in", "-", "-l", "6", "-json")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	var rep struct {
		Delta       float64 `json:"delta"`
		Transitions []struct {
			Transition int   `json:"transition"`
			Nodes      []int `json:"nodes"`
			Edges      []struct {
				I, J  int
				Score float64
			} `json:"edges"`
		} `json:"transitions"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(rep.Transitions) != 1 || len(rep.Transitions[0].Edges) != 3 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	wantNodes := []int{0, 3, 4, 8, 14, 15}
	if len(rep.Transitions[0].Nodes) != len(wantNodes) {
		t.Fatalf("nodes = %v, want %v", rep.Transitions[0].Nodes, wantNodes)
	}
}

func TestCLIEgoOutput(t *testing.T) {
	out, _, code := runCLI(t, "-in", "-", "-l", "6", "-ego")
	if code != 0 {
		t.Fatal("non-zero exit")
	}
	if !strings.Contains(out, "hottest node: v0") {
		t.Fatalf("ego section missing hottest node:\n%s", out)
	}
	if !strings.Contains(out, "ego network at instance 0") ||
		!strings.Contains(out, "ego network at instance 1") {
		t.Fatalf("ego networks missing:\n%s", out)
	}
}

func TestCLIVariants(t *testing.T) {
	for _, v := range []string{"cad", "adj", "com", "CAD"} {
		_, errOut, code := runCLI(t, "-in", "-", "-variant", v)
		if code != 0 {
			t.Errorf("variant %q: exit %d (%s)", v, code, errOut)
		}
	}
	_, errOut, code := runCLI(t, "-in", "-", "-variant", "bogus")
	if code == 0 {
		t.Fatal("bogus variant accepted")
	}
	if !strings.Contains(errOut, "unknown variant") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestCLIMissingInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain(nil, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want usage exit 2", code)
	}
}

func TestCLIBadFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := realMain([]string{"-in", "/nonexistent/x.txt"}, strings.NewReader(""), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIGarbageInput(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := realMain([]string{"-in", "-"}, strings.NewReader("not a graph\n"), &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "cadrun:") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestCLIAggregate(t *testing.T) {
	// Aggregating the two toy instances into one window leaves a
	// single-instance sequence, which the detector must reject cleanly.
	_, errOut, code := runCLI(t, "-in", "-", "-aggregate", "2")
	if code != 1 {
		t.Fatalf("exit %d, want detector error", code)
	}
	if !strings.Contains(errOut, "at least 2 instances") {
		t.Fatalf("stderr: %s", errOut)
	}
}

func TestCLIStats(t *testing.T) {
	out, _, code := runCLI(t, "-in", "-", "-stats")
	if code != 0 {
		t.Fatal("non-zero exit")
	}
	if !strings.Contains(out, "instance  0: n=17") {
		t.Fatalf("stats lines missing:\n%s", out)
	}
}
