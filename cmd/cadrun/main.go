// Command cadrun runs an anomaly detector over a temporal graph
// sequence stored on disk and prints (or JSON-encodes) the localized
// anomalies.
//
// Input format (see dyngraph.ReadSequence): one "t i j w" record per
// line, optional "n <count> t <count>" header, '#' comments.
//
// Usage:
//
//	cadrun -in sequence.txt [-variant cad|adj|com] [-l 5] [-k 50]
//	       [-aggregate w] [-json] [-ego] [-trace-out trace.json]
//
// -trace-out records one pipeline trace per oracle build and writes
// them as Chrome trace_event JSON; load the file in chrome://tracing
// or https://ui.perfetto.dev to see where the run spent its time.
//
// Example:
//
//	datagen -dataset enron -out /tmp/enron.txt
//	cadrun -in /tmp/enron.txt -l 5 -ego
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dyngraph"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// realMain is the whole program behind flag plumbing, factored out so
// tests can drive it end-to-end with in-memory streams.
func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cadrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "input sequence file (required; '-' for stdin)")
		variant  = fs.String("variant", "cad", "scoring variant: cad, adj or com")
		l        = fs.Float64("l", 5, "average anomalous nodes per transition (auto-δ target)")
		k        = fs.Int("k", 50, "commute-embedding dimension for large graphs")
		seed     = fs.Int64("seed", 1, "random seed for the embedding")
		asJSON   = fs.Bool("json", false, "emit the report as JSON")
		ego      = fs.Bool("ego", false, "print the top anomalous node's 1-hop ego network before and after its hottest transition")
		agg      = fs.Int("aggregate", 1, "sum consecutive windows of this many instances before detection")
		stats    = fs.Bool("stats", false, "print per-instance graph statistics before detection")
		traceOut = fs.String("trace-out", "", "write per-oracle pipeline traces to this file as Chrome trace_event JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *in == "" {
		fs.Usage()
		return 2
	}

	var v dyngraph.Variant
	switch strings.ToLower(*variant) {
	case "cad":
		v = dyngraph.CAD
	case "adj":
		v = dyngraph.ADJ
	case "com":
		v = dyngraph.COM
	default:
		fmt.Fprintf(stderr, "cadrun: unknown variant %q\n", *variant)
		return 1
	}

	src := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "cadrun:", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	seq, err := dyngraph.ReadSequence(src)
	if err != nil {
		fmt.Fprintln(stderr, "cadrun:", err)
		return 1
	}
	if *agg > 1 {
		seq, err = dyngraph.Aggregate(seq, *agg)
		if err != nil {
			fmt.Fprintln(stderr, "cadrun:", err)
			return 1
		}
	}

	if *stats {
		for t := 0; t < seq.T(); t++ {
			fmt.Fprintf(stdout, "instance %2d: %s\n", t, dyngraph.Stats(seq.At(t)))
		}
	}

	det := dyngraph.NewDetector(dyngraph.Options{Variant: v, K: *k, Seed: *seed})
	var tracer *dyngraph.Tracer
	if *traceOut != "" {
		tracer = dyngraph.NewTracer(seq.T())
		det.SetTracer(tracer)
	}
	res, err := det.Run(seq)
	if err != nil {
		fmt.Fprintln(stderr, "cadrun:", err)
		return 1
	}
	rep := res.AutoThreshold(*l)

	if tracer != nil {
		if err := writeTraceFile(*traceOut, tracer); err != nil {
			fmt.Fprintln(stderr, "cadrun:", err)
			return 1
		}
		fmt.Fprintf(stderr, "cadrun: wrote %d traces to %s\n", len(tracer.Traces()), *traceOut)
	}

	if *asJSON {
		if err := dyngraph.WriteReportJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "cadrun:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "sequence: n=%d T=%d avg-edges=%.0f  variant=%s  δ=%.4g (l=%.1f)\n",
		seq.N(), seq.T(), seq.AvgEdges(), strings.ToUpper(*variant), rep.Delta, *l)
	for _, tr := range rep.Transitions {
		if !tr.Anomalous() {
			continue
		}
		fmt.Fprintf(stdout, "transition %d → %d: %d anomalous edges, nodes %v\n",
			tr.T, tr.T+1, len(tr.Edges), labelNodes(seq, tr.Nodes))
		for i, e := range tr.Edges {
			if i >= 10 {
				fmt.Fprintf(stdout, "  … %d more\n", len(tr.Edges)-10)
				break
			}
			detail := ""
			if ex, eerr := res.Explain(tr.T, e.I, e.J); eerr == nil {
				detail = fmt.Sprintf("  [%s: |ΔA|=%.3g |Δc|=%.3g]", ex.Case(), ex.DeltaA, ex.DeltaC)
			}
			fmt.Fprintf(stdout, "  (%s, %s)  ΔE=%.4g%s\n", seq.At(0).Label(e.I), seq.At(0).Label(e.J), e.Score, detail)
		}
	}
	if *ego {
		if err := printHottestEgo(stdout, seq, res); err != nil {
			fmt.Fprintln(stderr, "cadrun:", err)
			return 1
		}
	}
	return 0
}

// printHottestEgo locates the globally highest ΔN (node, transition)
// pair and prints the node's 1-hop ego network before and after that
// transition — the Figure 8(b)-style inspection.
func printHottestEgo(w io.Writer, seq *dyngraph.Sequence, res *dyngraph.Result) error {
	bestNode, bestT, bestScore := -1, -1, 0.0
	for t := range res.Transitions {
		for i, s := range res.NodeScores(t) {
			if s > bestScore {
				bestNode, bestT, bestScore = i, t, s
			}
		}
	}
	if bestNode < 0 {
		return nil
	}
	fmt.Fprintf(w, "\nhottest node: %s at transition %d (ΔN = %.4g)\n",
		seq.At(0).Label(bestNode), bestT, bestScore)
	for _, t := range []int{bestT, bestT + 1} {
		vertices, sub, err := dyngraph.Ego(seq.At(t), bestNode, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ego network at instance %d (%d contacts):\n", t, sub.N()-1)
		for i := 1; i < sub.N(); i++ {
			fmt.Fprintf(w, "  %s  w=%.3g\n", seq.At(t).Label(vertices[i]), sub.Weight(0, i))
		}
	}
	return nil
}

// writeTraceFile dumps the retained traces as a Chrome trace_event
// document.
func writeTraceFile(path string, tracer *dyngraph.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dyngraph.WriteTraceChrome(f, tracer.Traces()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func labelNodes(seq *dyngraph.Sequence, nodes []int) []string {
	out := make([]string, len(nodes))
	for i, v := range nodes {
		out[i] = seq.At(0).Label(v)
	}
	return out
}
