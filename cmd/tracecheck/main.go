// Command tracecheck validates a Chrome trace_event JSON document, the
// format cadrun/cadbench -trace-out and cadd's
// /debug/traces?format=chrome emit (including the router's stitched
// cross-node form).
//
// Usage:
//
//	cadrun -in seq.txt -trace-out trace.json
//	tracecheck trace.json [more.json ...]   # '-' reads stdin
//
// For each file it requires a well-formed JSON object with a non-empty
// traceEvents array whose complete ("X") events carry a name and
// non-negative timestamps, and prints a one-line summary. Exit status
// is non-zero on the first invalid file — `make trace-smoke` uses this
// to catch a bit-rotted trace pipeline without a human loading the
// file into chrome://tracing. The validation itself lives in
// internal/tracecheck so tests can call it directly.
package main

import (
	"fmt"
	"io"
	"os"

	"dyngraph/internal/tracecheck"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: tracecheck trace.json [more.json ...]  ('-' reads stdin)")
		return 2
	}
	for _, path := range args {
		if err := check(path, stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			return 1
		}
	}
	return 0
}

// check validates one document and prints its event summary.
func check(path string, stdin io.Reader, stdout io.Writer) error {
	src := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	res, err := tracecheck.Check(src)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: ok (%d spans, %d metadata events)\n", path, res.Spans, res.Meta)
	return nil
}
