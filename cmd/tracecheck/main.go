// Command tracecheck validates a Chrome trace_event JSON document, the
// format cadrun/cadbench -trace-out and cadd's
// /debug/traces?format=chrome emit.
//
// Usage:
//
//	cadrun -in seq.txt -trace-out trace.json
//	tracecheck trace.json [more.json ...]   # '-' reads stdin
//
// For each file it requires a well-formed JSON object with a non-empty
// traceEvents array whose complete ("X") events carry a name and
// non-negative timestamps, and prints a one-line summary. Exit status
// is non-zero on the first invalid file — `make trace-smoke` uses this
// to catch a bit-rotted trace pipeline without a human loading the
// file into chrome://tracing.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// traceDoc mirrors the subset of the Chrome trace_event JSON object
// format the validator cares about.
type traceDoc struct {
	TraceEvents []struct {
		Name  string  `json:"name"`
		Phase string  `json:"ph"`
		Ts    float64 `json:"ts"`
		Dur   float64 `json:"dur"`
		Pid   *int    `json:"pid"`
		Tid   *int    `json:"tid"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func realMain(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: tracecheck trace.json [more.json ...]  ('-' reads stdin)")
		return 2
	}
	for _, path := range args {
		if err := check(path, stdin, stdout); err != nil {
			fmt.Fprintf(stderr, "tracecheck: %s: %v\n", path, err)
			return 1
		}
	}
	return 0
}

// check validates one document and prints its event summary.
func check(path string, stdin io.Reader, stdout io.Writer) error {
	src := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	raw, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	var spans, meta int
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("event %d: complete event without a name", i)
			}
			if ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("event %d (%s): negative timestamp or duration", i, ev.Name)
			}
			if ev.Pid == nil || ev.Tid == nil {
				return fmt.Errorf("event %d (%s): missing pid/tid", i, ev.Name)
			}
			spans++
		case "M":
			meta++
		default:
			return fmt.Errorf("event %d: unexpected phase %q", i, ev.Phase)
		}
	}
	if spans == 0 {
		return fmt.Errorf("no complete (ph=X) span events")
	}
	fmt.Fprintf(stdout, "%s: ok (%d spans, %d metadata events)\n", path, spans, meta)
	return nil
}
