package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validDoc = `{"displayTimeUnit":"ms","traceEvents":[
 {"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"main"}},
 {"ph":"X","pid":1,"tid":1,"name":"push","ts":0,"dur":1200},
 {"ph":"X","pid":1,"tid":1,"name":"oracle","ts":10,"dur":900}
]}`

func TestTracecheckValid(t *testing.T) {
	path := write(t, "ok.json", validDoc)
	var out, errBuf bytes.Buffer
	if code := realMain([]string{path}, nil, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "ok (2 spans, 1 metadata events)") {
		t.Fatalf("summary wrong: %s", out.String())
	}
}

func TestTracecheckStdin(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{"-"}, strings.NewReader(validDoc), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
}

func TestTracecheckRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage.json", "not json", "not valid JSON"},
		{"empty.json", `{"traceEvents":[]}`, "traceEvents is empty"},
		{"meta-only.json", `{"traceEvents":[{"ph":"M","pid":1,"tid":1,"name":"thread_name"}]}`,
			"no complete"},
		{"nameless.json", `{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1}]}`,
			"without a name"},
		{"negative.json", `{"traceEvents":[{"ph":"X","pid":1,"tid":1,"name":"p","ts":-5,"dur":1}]}`,
			"negative timestamp"},
		{"no-tid.json", `{"traceEvents":[{"ph":"X","pid":1,"name":"p","ts":0,"dur":1}]}`,
			"missing pid/tid"},
		{"phase.json", `{"traceEvents":[{"ph":"B","pid":1,"tid":1,"name":"p","ts":0}]}`,
			"unexpected phase"},
	}
	for _, c := range cases {
		path := write(t, c.name, c.doc)
		var out, errBuf bytes.Buffer
		if code := realMain([]string{path}, nil, &out, &errBuf); code != 1 {
			t.Errorf("%s: exit %d, want 1", c.name, code)
		}
		if !strings.Contains(errBuf.String(), c.wantErr) {
			t.Errorf("%s: stderr %q missing %q", c.name, errBuf.String(), c.wantErr)
		}
	}
}

func TestTracecheckUsage(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain(nil, nil, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errBuf.String(), "usage:") {
		t.Fatalf("stderr: %s", errBuf.String())
	}
}

func TestTracecheckMissingFile(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := realMain([]string{filepath.Join(t.TempDir(), "absent.json")}, nil, &out, &errBuf); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}
