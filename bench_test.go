// Benchmarks regenerating every table and figure of the paper's
// evaluation (experiment index in DESIGN.md §3). Each benchmark runs
// its experiment end-to-end and reports the headline quantities as
// custom metrics; the full row/series output is printed once per
// benchmark to stdout, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation at laptop scale. Paper-scale
// parameters (n=2000, 100 trials, sizes to 10⁷) are reachable through
// cmd/cadbench flags.
package dyngraph_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"dyngraph/internal/experiments"
)

// printOnce renders each experiment's table a single time even though
// the benchmark body runs b.N times.
var printOnce sync.Map

func printTable(name string, t *experiments.Table) {
	if _, loaded := printOnce.LoadOrStore(name, true); loaded {
		return
	}
	fmt.Println()
	if err := t.Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
	}
}

// BenchmarkTable1Toy regenerates Table 1 (E1): toy-example edge scores.
func BenchmarkTable1Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("table1", res.Table())
			b.ReportMetric(res.Scores[0].Score, "topΔE")
		}
	}
}

// BenchmarkTable2Toy regenerates Table 2 (E2): toy-example node scores.
func BenchmarkTable2Toy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("table2", res.Table())
		}
	}
}

// BenchmarkFig2ToyEigenmap regenerates Figure 2 (E3): the 2-D Laplacian
// eigenmap of both toy instances.
func BenchmarkFig2ToyEigenmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig2", res.Table())
		}
	}
}

// BenchmarkFig3ToyCADvsACT regenerates Figure 3 (E4): normalized CAD vs
// ACT node scores on the toy data.
func BenchmarkFig3ToyCADvsACT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig3", res.Table())
			cad, act := res.ResponsibleSeparation()
			b.ReportMetric(cad, "CAD-sep")
			b.ReportMetric(act, "ACT-sep")
		}
	}
}

// BenchmarkFig4GMMRealization regenerates Figure 4: the synthetic
// mixture realization and its similarity block structure.
func BenchmarkFig4GMMRealization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(300, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig4", res.Table())
			b.ReportMetric(res.IntraMean/res.InterMean, "block-contrast")
		}
	}
}

// BenchmarkFig5AUCvsK regenerates Figure 5 (E5) at bench scale: CAD
// AUC as a function of the embedding dimension k.
func BenchmarkFig5AUCvsK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(
			experiments.SyntheticConfig{N: 200, Trials: 3, Seed: 1},
			[]int{2, 10, 50},
		)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig5", res.Table())
			b.ReportMetric(res.AUC[len(res.AUC)-1], "AUC@k50")
		}
	}
}

// BenchmarkFig6ROC regenerates Figure 6 (E6) at bench scale: averaged
// ROC curves and AUCs for CAD/ADJ/COM/ACT/CLC on synthetic GMM data.
func BenchmarkFig6ROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.SyntheticConfig{N: 300, Trials: 5, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("fig6", res.Table())
			for _, m := range experiments.Methods() {
				b.ReportMetric(res.AUC[m], "AUC-"+m)
			}
		}
	}
}

// BenchmarkFig6VerbatimEdgeLevel runs the §4.1 workload at the paper's
// literal noise density with edge-level evaluation (see EXPERIMENTS.md
// E6's deviation note).
func BenchmarkFig6VerbatimEdgeLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6Verbatim(experiments.SyntheticConfig{N: 200, Trials: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("verbatim", res.Table())
			b.ReportMetric(res.AUC[experiments.MethodCAD], "edgeAUC-CAD")
		}
	}
}

// BenchmarkDesignAblation measures the repository's own design choices
// (preconditioner, oracle) on CAD's two workload shapes.
func BenchmarkDesignAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(experiments.AblationConfig{SparseN: 10000, DenseN: 300, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("ablation", res.Table())
		}
	}
}

// BenchmarkDistanceRobustness measures the §3.1 robustness claim:
// relative distance movement of commute vs shortest-path under one
// spurious shortcut.
func BenchmarkDistanceRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DistanceAblation(experiments.SyntheticConfig{N: 200, Trials: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("distance", res.Table())
			b.ReportMetric(res.Sensitivity["commute"], "commute-sens")
			b.ReportMetric(res.Sensitivity["shortest-path"], "sp-sens")
		}
	}
}

// BenchmarkScaleRuntimes regenerates the §4.1.3 scalability study (E7)
// at bench scale.
func BenchmarkScaleRuntimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scale(experiments.ScaleConfig{
			Sizes:  []int{1000, 5000, 20000},
			Trials: 1,
			Seed:   1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("scale", res.Table())
			last := len(res.Sizes) - 1
			b.ReportMetric(res.Seconds[experiments.MethodCAD][last], "CAD-s@20k")
			b.ReportMetric(res.Seconds[experiments.MethodADJ][last], "ADJ-s@20k")
		}
	}
}

// BenchmarkEnronTimeline regenerates Figures 7 and 8 (E8, E9) on the
// simulated Enron corpus.
func BenchmarkEnronTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Enron(experiments.EnronConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("enron", res.SummaryTable())
			b.ReportMetric(res.EventRecall, "event-recall")
			b.ReportMetric(float64(res.CEORankAtBroadcast), "CEO-rank")
		}
	}
}

// BenchmarkDBLPAnecdotes regenerates the §4.2.2 anecdote checks (E10)
// on the simulated DBLP corpus.
func BenchmarkDBLPAnecdotes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.DBLP(experiments.DBLPConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("dblp", res.Table())
			b.ReportMetric(float64(res.JumperRank), "jumper-rank")
		}
	}
}

// BenchmarkPrecipTeleconnection regenerates Figures 9 and 10 (E11) on
// the simulated precipitation grid.
func BenchmarkPrecipTeleconnection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Precip(experiments.PrecipConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printTable("precip", res.Table())
			b.ReportMetric(res.EventAUC, "event-AUC")
		}
	}
}
